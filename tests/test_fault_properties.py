"""Property tests over the fault plane.

Two families:

* any crash-only FaultScript (random victims, random times) preserves
  agreement and validity across the memory-backed Paxos variants — the
  event-driven timeline must never open a safety hole the static plans
  did not have;
* a run containing partition + heal + crash + recovery events replays
  byte-identically from its seed (trace hash over the full schedule).
"""

import hashlib

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import (
    AlignedConfig,
    AlignedPaxos,
    FaultScript,
    ProtectedMemoryPaxos,
    run_consensus,
)
from repro.consensus.omega import crash_aware_omega
from repro.core.cluster import Cluster, ClusterConfig

_PROPERTY_SETTINGS = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_PROTOCOLS = {
    "pmp": lambda: ProtectedMemoryPaxos(),
    "aligned-protected": lambda: AlignedPaxos(AlignedConfig(variant="protected")),
    "aligned-disk": lambda: AlignedPaxos(AlignedConfig(variant="disk")),
}


def _crash_only_script(proc_victim, proc_at, mem_victim, mem_at):
    """One random crash-only timeline: at most one process and one memory."""
    script = FaultScript()
    if proc_victim is not None:
        script.at(proc_at).crash_process(proc_victim)
    if mem_victim is not None:
        script.at(mem_at).crash_memory(mem_victim)
    return script


def _check_safety(result, inputs):
    assert not result.metrics.violations
    values = result.decided_values
    assert len(values) <= 1
    assert all(value in inputs for value in values)


class TestCrashOnlyScriptsPreserveSafety:
    @_PROPERTY_SETTINGS
    @given(
        protocol=st.sampled_from(sorted(_PROTOCOLS)),
        proc_victim=st.one_of(st.none(), st.integers(0, 2)),
        proc_at=st.floats(0.0, 8.0),
        mem_victim=st.one_of(st.none(), st.integers(0, 2)),
        mem_at=st.floats(0.0, 8.0),
        seed=st.integers(0, 10_000),
    )
    def test_agreement_and_validity(
        self, protocol, proc_victim, proc_at, mem_victim, mem_at, seed
    ):
        inputs = ["a", "b", "c"]
        script = _crash_only_script(proc_victim, proc_at, mem_victim, mem_at)
        result = run_consensus(
            _PROTOCOLS[protocol](),
            3,
            3,
            inputs=inputs,
            faults=script,
            omega="crash-aware",
            seed=seed,
            deadline=4_000,
        )
        _check_safety(result, inputs)
        # within tolerance (one process, a minority of memories) the run
        # must also terminate with every survivor decided
        assert result.all_decided

    @_PROPERTY_SETTINGS
    @given(
        protocol=st.sampled_from(["pmp", "aligned-protected"]),
        proc_victim=st.integers(0, 2),
        crash_at=st.floats(0.0, 6.0),
        down_for=st.floats(5.0, 30.0),
        seed=st.integers(0, 10_000),
    )
    def test_crash_recover_keeps_safety_and_terminates(
        self, protocol, proc_victim, crash_at, down_for, seed
    ):
        inputs = ["a", "b", "c"]
        script = FaultScript()
        script.at(crash_at).crash_process(proc_victim).recover(at=crash_at + down_for)
        result = run_consensus(
            _PROTOCOLS[protocol](),
            3,
            3,
            inputs=inputs,
            faults=script,
            omega="crash-aware",
            seed=seed,
            deadline=8_000,
        )
        _check_safety(result, inputs)
        # the recovered process is expected to decide too
        assert result.all_decided
        assert len(result.metrics.decisions) == 3


def _chaos_cluster(seed: int) -> Cluster:
    """One churn-heavy cluster: partition + heal + crash + recover + link
    chaos, tracing on."""
    script = FaultScript()
    script.at(1.0).crash_process(0).recover(at=30.0)
    script.at(2.0).partition({0, 1}, {2}).heal(at=25.0)
    script.at(3.0).delay_link(1, 2, factor=2.0, until=20.0, symmetric=True)
    script.at(4.0).duplicate_link(1, 0, prob=0.5, until=22.0)
    cluster = Cluster(
        ProtectedMemoryPaxos(),
        ClusterConfig(3, 3, seed=seed, trace=True, deadline=60_000),
        script,
    )
    cluster.kernel.omega = crash_aware_omega(cluster.kernel)
    return cluster


def _run_hash(seed: int) -> str:
    cluster = _chaos_cluster(seed)
    result = cluster.run(["a", "b", "c"])
    assert result.all_decided and result.agreed
    kernel = cluster.kernel
    digest = hashlib.sha256()
    for event in kernel.tracer.events:
        digest.update(str(event).encode())
        digest.update(b"\n")
    for record in kernel.metrics.fault_timeline:
        digest.update(
            f"F {record.time} {record.kind} {record.subject} {sorted(record.detail.items())}".encode()
        )
    for pid in sorted(kernel.metrics.decisions):
        decision = kernel.metrics.decisions[pid]
        digest.update(f"D p{int(pid)} {decision.value!r} @{decision.decided_at}".encode())
    digest.update(
        (
            f"msgs={sorted(kernel.metrics.messages_sent.items())} "
            f"ops={sorted(kernel.metrics.mem_ops.items())} "
            f"pdrop={kernel.network.partition_dropped} "
            f"cdrop={kernel.network.chaos_dropped} "
            f"pushed={kernel.queue.pushed} popped={kernel.queue.popped} "
            f"now={kernel.now}"
        ).encode()
    )
    return digest.hexdigest()


class TestChaosDeterminism:
    def test_partition_heal_recovery_replays_identically(self):
        """Same seed, same chaos script -> byte-identical schedule."""
        assert _run_hash(11) == _run_hash(11)

    def test_different_seeds_diverge(self):
        """The hash is sensitive enough to see the seed at all."""
        assert _run_hash(11) != _run_hash(12)

    def test_seed_sweep(self, seed_sweep):
        """Replay determinism across many seeds (off by default).

        Enable with ``pytest --seed-sweep N``: reruns the chaos-cluster
        trace-hash check for seeds ``0..N-1`` in one process — the cheap
        way to widen determinism coverage before a release or in the
        nightly tier-2 run.
        """
        if not seed_sweep:
            pytest.skip("enable with --seed-sweep N")
        for seed in range(seed_sweep):
            assert _run_hash(seed) == _run_hash(seed), f"seed {seed} diverged"
