"""Paxos conformance rules: each message type's accept/reject conditions."""

import pytest

from repro.consensus.ballots import Ballot
from repro.consensus.messages import (
    Accept,
    Accepted,
    Decision,
    Nack,
    Prepare,
    Promise,
    SetupValue,
)
from repro.trusted.history import RecvEvent, SentEvent, TO_ALL
from repro.trusted.validators import PaxosConformance, PermissiveConformance
from repro.types import ProcessId

from tests.conftest import env_of, make_kernel

QUORUM = 2
B1 = Ballot(1, 0)
B2 = Ballot(2, 1)


@pytest.fixture
def env():
    return env_of(make_kernel(), 0)


@pytest.fixture
def validator():
    return PaxosConformance(quorum=QUORUM)


def _recv(sender, msg, k=1, dst=TO_ALL):
    return RecvEvent(ProcessId(sender), k, dst, msg)


def _sent(k, msg, dst=TO_ALL):
    return SentEvent(k, dst, msg)


class TestPrepare:
    def test_own_ballot_ok(self, env, validator):
        assert validator.validate(env, ProcessId(0), 1, Prepare(B1), ())

    def test_foreign_ballot_rejected(self, env, validator):
        assert not validator.validate(env, ProcessId(1), 1, Prepare(B1), ())

    def test_ballot_must_increase(self, env, validator):
        history = (_sent(1, Prepare(Ballot(5, 0))),)
        assert not validator.validate(
            env, ProcessId(0), 2, Prepare(Ballot(3, 0)), history
        )
        assert validator.validate(
            env, ProcessId(0), 2, Prepare(Ballot(6, 0)), history
        )


class TestPromise:
    def test_promise_needs_received_prepare(self, env, validator):
        msg = Promise(B1, None, None)
        assert not validator.validate(env, ProcessId(1), 1, msg, ())
        history = (_recv(0, Prepare(B1)),)
        assert validator.validate(env, ProcessId(1), 1, msg, history)

    def test_promise_after_higher_promise_rejected(self, env, validator):
        history = (
            _recv(1, Prepare(B2)),
            _sent(1, Promise(B2, None, None)),
            _recv(0, Prepare(B1), k=2),
        )
        assert not validator.validate(
            env, ProcessId(2), 2, Promise(B1, None, None), history
        )

    def test_promise_must_report_last_accepted(self, env, validator):
        history = (
            _recv(0, Prepare(B1)),
            _sent(1, Promise(B1, None, None)),
            _recv(0, Accept(B1, "v")),
            _sent(2, Accepted(B1, "v")),
            _recv(1, Prepare(B2)),
        )
        honest = Promise(B2, B1, "v")
        lying_none = Promise(B2, None, None)
        lying_value = Promise(B2, B1, "other")
        assert validator.validate(env, ProcessId(2), 3, honest, history)
        assert not validator.validate(env, ProcessId(2), 3, lying_none, history)
        assert not validator.validate(env, ProcessId(2), 3, lying_value, history)


class TestAccept:
    def _promises(self, value=None, ballot=B1):
        accepted = (ballot, value) if value is not None else (None, None)
        return (
            _recv(1, Promise(B1, *accepted)),
            _recv(2, Promise(B1, None, None)),
        )

    def test_accept_needs_promise_quorum(self, env, validator):
        msg = Accept(B1, "mine")
        assert not validator.validate(env, ProcessId(0), 1, msg, ())
        one_promise = (_recv(1, Promise(B1, None, None)),)
        assert not validator.validate(env, ProcessId(0), 1, msg, one_promise)
        assert validator.validate(env, ProcessId(0), 1, msg, self._promises())

    def test_accept_must_adopt_highest_accepted(self, env, validator):
        history = (
            _recv(1, Promise(B1, Ballot(0, 2), "forced")),
            _recv(2, Promise(B1, None, None)),
        )
        assert validator.validate(env, ProcessId(0), 1, Accept(B1, "forced"), history)
        assert not validator.validate(env, ProcessId(0), 1, Accept(B1, "own"), history)

    def test_accept_foreign_ballot_rejected(self, env, validator):
        assert not validator.validate(
            env, ProcessId(0), 1, Accept(B2, "v"), self._promises()
        )


class TestAccepted:
    def test_accepted_needs_matching_accept(self, env, validator):
        msg = Accepted(B1, "v")
        assert not validator.validate(env, ProcessId(1), 1, msg, ())
        history = (_recv(0, Accept(B1, "v")),)
        assert validator.validate(env, ProcessId(1), 1, msg, history)

    def test_accepted_with_wrong_value_rejected(self, env, validator):
        history = (_recv(0, Accept(B1, "v")),)
        assert not validator.validate(
            env, ProcessId(1), 1, Accepted(B1, "other"), history
        )


class TestNack:
    def test_nack_needs_justification(self, env, validator):
        msg = Nack(B1, B2)
        assert not validator.validate(env, ProcessId(2), 1, msg, ())
        justified = (_recv(1, Prepare(B2)),)
        assert validator.validate(env, ProcessId(2), 1, msg, justified)

    def test_nack_justified_by_own_promise(self, env, validator):
        history = (_recv(1, Prepare(B2)), _sent(1, Promise(B2, None, None)))
        assert validator.validate(env, ProcessId(2), 2, Nack(B1, B2), history)


class TestDecision:
    def test_decision_needs_accepted_quorum(self, env, validator):
        msg = Decision("v")
        assert not validator.validate(env, ProcessId(0), 1, msg, ())
        one = (_recv(1, Accepted(B1, "v")),)
        assert not validator.validate(env, ProcessId(0), 1, msg, one)
        quorum = (_recv(1, Accepted(B1, "v")), _recv(2, Accepted(B1, "v")))
        assert validator.validate(env, ProcessId(0), 1, msg, quorum)

    def test_votes_must_share_a_ballot(self, env, validator):
        split = (_recv(1, Accepted(B1, "v")), _recv(2, Accepted(B2, "v")))
        assert not validator.validate(env, ProcessId(0), 1, Decision("v"), split)

    def test_votes_must_match_value(self, env, validator):
        mixed = (_recv(1, Accepted(B1, "v")), _recv(2, Accepted(B1, "w")))
        assert not validator.validate(env, ProcessId(0), 1, Decision("v"), mixed)


class TestMisc:
    def test_setup_values_always_pass(self, env, validator):
        assert validator.validate(
            env, ProcessId(0), 1, SetupValue("anything", 2), ()
        )

    def test_unknown_message_rejected(self, env, validator):
        assert not validator.validate(env, ProcessId(0), 1, {"weird": 1}, ())

    def test_permissive_accepts_anything(self, env):
        permissive = PermissiveConformance()
        assert permissive.validate(env, ProcessId(0), 1, {"weird": 1}, ())
