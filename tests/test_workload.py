"""The workload engine: key distributions, op mixes, metrics aggregation."""

import random

import pytest

from repro.metrics.workload import (
    LatencySummary,
    ShardStats,
    WorkloadReport,
    percentile,
)
from repro.shard.workload import (
    OperationMix,
    UniformKeys,
    YCSB_A,
    YCSB_B,
    YCSB_C,
    ZipfianKeys,
)


class TestUniformKeys:
    def test_covers_the_keyspace(self):
        rng = random.Random(1)
        dist = UniformKeys(10)
        drawn = {dist.next_key(rng) for _ in range(500)}
        assert drawn == {f"key{i}" for i in range(10)}

    def test_roughly_flat(self):
        rng = random.Random(2)
        dist = UniformKeys(4)
        counts = {}
        for _ in range(4000):
            key = dist.next_key(rng)
            counts[key] = counts.get(key, 0) + 1
        for count in counts.values():
            assert 800 < count < 1200


class TestZipfianKeys:
    def test_ranks_stay_in_range(self):
        rng = random.Random(3)
        dist = ZipfianKeys(100)
        for _ in range(2000):
            assert 0 <= dist.next_rank(rng) < 100

    def test_rank_zero_is_the_hottest(self):
        rng = random.Random(4)
        dist = ZipfianKeys(100, theta=0.99)
        counts = [0] * 100
        for _ in range(5000):
            counts[dist.next_rank(rng)] += 1
        assert counts[0] == max(counts)
        # hot key draws far above the uniform share (1% of 5000 = 50)
        assert counts[0] > 300

    def test_deterministic_for_a_seeded_rng(self):
        dist = ZipfianKeys(64)
        a = [dist.next_key(random.Random(9)) for _ in range(50)]
        b = [dist.next_key(random.Random(9)) for _ in range(50)]
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfianKeys(1)
        with pytest.raises(ValueError):
            ZipfianKeys(10, theta=1.5)

    def test_two_key_distribution_is_well_defined(self):
        # n_keys=2 makes the eta formula a 0/0 limit; it must not crash
        # and must still draw both keys with rank 0 the hotter one.
        rng = random.Random(7)
        dist = ZipfianKeys(2)
        counts = [0, 0]
        for _ in range(2000):
            counts[dist.next_rank(rng)] += 1
        assert counts[0] > counts[1] > 0


class TestOperationMix:
    def test_ycsb_presets(self):
        assert YCSB_A.read_fraction == 0.5
        assert YCSB_B.read_fraction == 0.95
        assert YCSB_C.read_fraction == 1.0

    def test_read_only_mix_never_writes(self):
        rng = random.Random(5)
        assert all(YCSB_C.next_op(rng) == "get" for _ in range(200))

    def test_mix_fraction_respected(self):
        rng = random.Random(6)
        reads = sum(1 for _ in range(4000) if YCSB_B.next_op(rng) == "get")
        assert 0.92 < reads / 4000 < 0.98

    def test_validation(self):
        with pytest.raises(ValueError):
            OperationMix(read_fraction=1.5)


class TestLatencyAggregation:
    def test_percentile_nearest_rank(self):
        samples = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert percentile(samples, 0.0) == 1.0
        assert percentile(samples, 0.5) == 3.0
        assert percentile(samples, 1.0) == 5.0

    def test_summary_of_empty_samples(self):
        summary = LatencySummary.of([])
        assert summary.count == 0 and summary.mean == 0.0

    def test_summary_statistics(self):
        summary = LatencySummary.of([2.0, 4.0, 6.0, 8.0])
        assert summary.count == 4
        assert summary.mean == 5.0
        assert summary.max == 8.0
        assert summary.p50 in (4.0, 6.0)

    def test_shard_stats_batch_fill(self):
        stats = ShardStats(shard=0, committed_commands=30, committed_batches=10)
        assert stats.mean_batch_fill == 3.0
        assert ShardStats(shard=1).mean_batch_fill == 0.0


class TestWorkloadReport:
    def _report(self):
        shards = {
            0: ShardStats(
                shard=0,
                committed_commands=40,
                committed_batches=10,
                latencies=[2.0, 4.0],
            ),
            1: ShardStats(
                shard=1,
                committed_commands=20,
                committed_batches=10,
                latencies=[6.0, 8.0],
            ),
        }
        return WorkloadReport(shards=shards, completed_requests=60, elapsed=30.0)

    def test_aggregates(self):
        report = self._report()
        assert report.committed_commands == 60
        assert report.committed_batches == 20
        assert report.commands_per_delay == 2.0
        assert report.mean_batch_fill == 3.0
        assert report.latency_summary().mean == 5.0

    def test_rendering(self):
        report = self._report()
        table = report.per_shard_table()
        assert "g0" in table and "g1" in table
        assert "commands/delay" in report.summary()

    def test_zero_elapsed_guard(self):
        report = WorkloadReport(shards={}, completed_requests=0, elapsed=0.0)
        assert report.commands_per_delay == 0.0
        assert report.mean_batch_fill == 0.0

    def test_shortfall_is_loud(self):
        report = WorkloadReport(
            shards={}, completed_requests=7, elapsed=10.0, expected_requests=10
        )
        assert not report.ok
        assert "INCOMPLETE: 3 of 10" in report.summary()
        assert self._report().ok
