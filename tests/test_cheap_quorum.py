"""Cheap Quorum (Algorithms 4-5): fast path, panic paths, abort lemmas."""

import pytest

from repro.consensus.base import ConsensusProtocol
from repro.consensus.cheap_quorum import (
    CheapQuorum,
    CheapQuorumConfig,
    CqOutcome,
    cq_regions,
)
from repro.core.cluster import Cluster, ClusterConfig
from repro.crypto.proofs import verify_proof
from repro.failures.plans import FaultPlan
from repro.failures.byzantine import CheapQuorumEquivocatorLeader, SilentByzantine
from repro.sim.latency import PartialSynchrony


class _CqOnly(ConsensusProtocol):
    """Cheap Quorum alone, returning outcomes for inspection."""

    name = "cq-only"

    def __init__(self, config=None):
        self.config = config or CheapQuorumConfig()
        self.outcomes = {}

    def regions(self, n, m):
        return cq_regions(n, self.config.leader)

    def tasks(self, env, value):
        def main():
            cq = CheapQuorum(env, self.config)
            outcome = yield from cq.run(value)
            self.outcomes[int(env.pid)] = outcome
            return outcome

        return [("cq", main())]


def _run(n=3, m=3, faults=None, inputs=None, latency=None, deadline=3000,
         config=None, strict=True, seed=0):
    proto = _CqOnly(config)
    cluster_config = ClusterConfig(
        n_processes=n, n_memories=m, deadline=deadline,
        strict_safety=strict, seed=seed,
        **({"latency": latency} if latency else {}),
    )
    cluster = Cluster(proto, cluster_config, faults)
    inputs = inputs or [f"v{p}" for p in range(n)]
    cluster.start(inputs)
    # CQ alone does not guarantee everyone decides; run to quiescence.
    cluster.kernel.run(until=deadline)
    return proto, cluster.kernel


class TestFastPath:
    def test_leader_decides_in_two_delays(self):
        proto, kernel = _run()
        assert kernel.metrics.delays_of(0) == 2.0
        assert proto.outcomes[0].decided

    def test_all_followers_decide_common_case(self):
        proto, kernel = _run()
        for p in range(3):
            assert proto.outcomes[p].decided, f"p{p+1}"
            assert proto.outcomes[p].value == "v0"
        assert kernel.metrics.decided_values() == {"v0"}

    def test_one_signature_for_leader_decision(self):
        proto, kernel = _run()
        leader_sigs_at_decision = kernel.metrics.signatures[0]
        assert leader_sigs_at_decision >= 1
        # The leader's decision itself required exactly one signature; the
        # rest are helper-path copies made after deciding.
        record = kernel.metrics.decisions[0]
        assert record.delays == 2.0

    def test_followers_build_unanimity_proofs(self):
        proto, kernel = _run()
        follower = proto.outcomes[1]
        assert follower.proof is not None
        assert verify_proof(kernel.authority, follower.proof, 3) is not None


class TestPanicPaths:
    def test_silent_leader_causes_abort_with_own_input(self):
        faults = FaultPlan().crash_process(0, at=0.0)
        proto, kernel = _run(faults=faults, deadline=3000)
        for p in (1, 2):
            outcome = proto.outcomes[p]
            assert outcome.panicked and not outcome.decided
            assert outcome.value == f"v{p}"  # own input, B class
            assert outcome.leader_signed is None

    def test_leader_crash_after_write_aborts_with_leader_value(self):
        faults = FaultPlan().crash_process(0, at=2.5)
        proto, kernel = _run(faults=faults, deadline=3000)
        for p in (1, 2):
            outcome = proto.outcomes[p]
            if not outcome.decided:
                assert outcome.value == "v0"
                assert outcome.leader_signed is not None  # M class or better

    def test_silent_follower_forces_panic(self):
        faults = FaultPlan().make_byzantine(2, SilentByzantine())
        proto, kernel = _run(faults=faults, deadline=3000)
        # Followers cannot reach n unanimous copies; they abort carrying the
        # leader's signed value (Lemma 4.6's M-or-better guarantee).
        outcome = proto.outcomes[1]
        assert outcome.panicked
        assert outcome.value == "v0"
        assert outcome.leader_signed is not None

    def test_leader_decides_then_panic_still_carries_value(self):
        """Abort agreement (Lemma 4.6): the leader decided v, so every
        aborting correct process must carry v out."""
        faults = FaultPlan().make_byzantine(1, SilentByzantine())
        proto, kernel = _run(faults=faults, deadline=3000)
        assert proto.outcomes[0].decided and proto.outcomes[0].value == "v0"
        aborted = proto.outcomes[2]
        assert aborted.value == "v0"

    def test_revocation_naks_late_leader_write(self):
        """After followers panic, the leader region is read-only: a late
        leader write must fail (the dynamic-permission core of the paper)."""
        config = CheapQuorumConfig(leader_timeout=5.0)

        class LateLeader(_CqOnly):
            def tasks(self, env, value):
                if int(env.pid) == 0:
                    def late():
                        yield env.sleep(30.0)  # miss the window
                        cq = CheapQuorum(env, self.config)
                        outcome = yield from cq.run(value)
                        self.outcomes[0] = outcome
                        return outcome
                    return [("cq-late", late())]
                return super().tasks(env, value)

        proto = LateLeader(config)
        cluster = Cluster(
            proto, ClusterConfig(n_processes=3, n_memories=3, deadline=3000)
        )
        cluster.start(["v0", "v1", "v2"])
        cluster.kernel.run(until=3000)
        leader_outcome = proto.outcomes[0]
        assert leader_outcome.panicked and not leader_outcome.decided

    def test_equivocating_leader_never_splits_deciders(self):
        faults = FaultPlan().make_byzantine(0, CheapQuorumEquivocatorLeader())
        proto, kernel = _run(faults=faults, deadline=3000)
        decided_values = {
            o.value for o in proto.outcomes.values() if o.decided
        }
        assert len(decided_values) <= 1  # Lemma 4.5 under a Byzantine leader

    def test_asynchrony_aborts_rather_than_divides(self):
        proto, kernel = _run(
            latency=PartialSynchrony(gst=200, chaos=30), seed=5,
            deadline=2000, config=CheapQuorumConfig(
                leader_timeout=20.0, unanimity_timeout=30.0
            ),
        )
        decided = {o.value for o in proto.outcomes.values() if o.decided}
        assert len(decided) <= 1


class TestAbortCertificates:
    def test_decided_follower_implies_proofs_everywhere(self):
        """Lemma 4.6 second half: if a follower decided, aborters carry a
        correct unanimity proof."""
        # Make p3 time out *after* unanimity forms by delaying only its
        # proof-phase view: simplest robust check — run the common case and
        # verify every follower ended up with a verifiable proof available.
        proto, kernel = _run()
        for p in (1, 2):
            proof = proto.outcomes[p].proof
            assert proof is not None
            assert verify_proof(kernel.authority, proof, 3) is not None

    def test_outcome_dataclass_shape(self):
        outcome = CqOutcome(decided=True, panicked=False, value="x")
        assert outcome.leader_signed is None and outcome.proof is None
