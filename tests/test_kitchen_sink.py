"""Kitchen-sink scenarios: stacked fault classes in single runs."""

import pytest

from repro import (
    AlignedPaxos,
    EquivocatingBroadcaster,
    FastRobust,
    FastRobustConfig,
    FaultPlan,
    JitteredSynchrony,
    PartialSynchrony,
    ProtectedMemoryPaxos,
    RobustBackup,
    SilentByzantine,
    run_consensus,
)
from repro.consensus.cheap_quorum import CheapQuorumConfig

_FR = FastRobustConfig(
    cheap_quorum=CheapQuorumConfig(leader_timeout=15.0, unanimity_timeout=25.0)
)


class TestStackedFaults:
    def test_byzantine_plus_memory_crash(self):
        faults = (
            FaultPlan()
            .make_byzantine(2, SilentByzantine())
            .crash_memory(1, at=0.0)
        )
        result = run_consensus(
            FastRobust(_FR), 3, 3, faults=faults, deadline=60_000
        )
        assert result.all_decided and result.agreed

    def test_byzantine_plus_memory_crash_plus_jitter(self):
        faults = (
            FaultPlan()
            .make_byzantine(1, EquivocatingBroadcaster())
            .crash_memory(0, at=5.0)
        )
        result = run_consensus(
            FastRobust(_FR), 3, 3, faults=faults,
            latency=JitteredSynchrony(0.5), seed=11, deadline=60_000,
        )
        assert result.all_decided and result.agreed

    def test_robust_backup_byzantine_plus_two_memory_crashes(self):
        faults = (
            FaultPlan()
            .make_byzantine(4, SilentByzantine())
            .crash_memory(0, at=0.0)
            .crash_memory(3, at=0.0)
        )
        result = run_consensus(
            RobustBackup(), 5, 5, faults=faults, deadline=60_000
        )
        assert result.all_decided and result.agreed

    def test_pmp_process_and_memory_crashes_with_jitter(self):
        faults = (
            FaultPlan()
            .crash_process(0, at=2.0)
            .crash_process(1, at=4.0)
            .crash_memory(2, at=1.0)
        )
        result = run_consensus(
            ProtectedMemoryPaxos(), 3, 3, faults=faults,
            latency=JitteredSynchrony(0.4), seed=5,
            omega="crash-aware", deadline=20_000,
        )
        assert result.all_decided and result.agreed

    def test_aligned_crashes_during_partial_synchrony(self):
        faults = FaultPlan().crash_process(2, at=10.0).crash_memory(1, at=20.0)
        result = run_consensus(
            AlignedPaxos(), 3, 3, faults=faults,
            latency=PartialSynchrony(gst=80, chaos=15), seed=3,
            deadline=60_000,
        )
        assert result.all_decided and result.agreed

    def test_fr_byzantine_during_asynchrony(self):
        faults = FaultPlan().make_byzantine(2, SilentByzantine())
        result = run_consensus(
            FastRobust(_FR), 3, 3, faults=faults,
            latency=PartialSynchrony(gst=100, chaos=20), seed=9,
            deadline=120_000,
        )
        assert result.all_decided and result.agreed

    @pytest.mark.parametrize("seed", [2, 7, 13])
    def test_everything_everywhere(self, seed):
        """One of each: Byzantine process, crashed process is not possible
        at n=3 with f=1 Byzantine — so: Byzantine + memory crash + jitter,
        n=5 allows a crash too."""
        faults = (
            FaultPlan()
            .make_byzantine(3, SilentByzantine())
            .crash_process(4, at=float(seed))
            .crash_memory(0, at=float(seed) / 2)
        )
        result = run_consensus(
            FastRobust(_FR), 5, 3, faults=faults,
            latency=JitteredSynchrony(0.3), seed=seed, deadline=120_000,
        )
        # n=5 tolerates f=2 faulty processes (Byzantine+crash) and 1 of 3
        # memories down.
        assert result.all_decided and result.agreed
        assert not result.metrics.violations
