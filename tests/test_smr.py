"""Replicated log + KV store over Protected-Memory-Paxos instances."""

import pytest

from repro.consensus.base import ConsensusProtocol
from repro.consensus.omega import leader_schedule
from repro.core.cluster import Cluster, ClusterConfig
from repro.smr.kv import KVCommand, KVStateMachine
from repro.smr.log import ReplicatedLog, SmrConfig, smr_regions


class _SmrHarness(ConsensusProtocol):
    """Drives a replicated KV: the Ω leader proposes the command script."""

    name = "smr-harness"

    def __init__(self, scripts, total_slots):
        self.scripts = scripts  # pid -> list of commands
        self.total_slots = total_slots
        self.machines = {}
        self.logs = {}

    def regions(self, n, m):
        return smr_regions(n)

    def tasks(self, env, value):
        machine = KVStateMachine()
        log = ReplicatedLog(env, machine.apply)
        self.machines[int(env.pid)] = machine
        self.logs[int(env.pid)] = log

        def driver():
            script = self.scripts.get(int(env.pid), [])
            slot = 0
            for command in script:
                yield from log.propose(slot, command)
                slot += 1
            while log.applied_upto < self.total_slots - 1:
                advanced = yield env.gate_wait(log.commit_gate, timeout=10.0)
                if not advanced and env.leader() == env.pid:
                    # Leader responsibility: drive unfilled slots to keep
                    # the log prefix-complete (no-op fill).
                    next_slot = log.applied_upto + 1
                    yield from log.propose(next_slot, KVCommand("get", "noop"))
            env.decide(tuple(sorted(machine.snapshot().items())))

        return [("smr-listener", log.listener()), ("smr-driver", driver())]


def _run(scripts, total_slots, n=3, m=3, omega=None, deadline=5000):
    config = ClusterConfig(
        n_processes=n, n_memories=m, deadline=deadline,
        **({"omega": omega} if omega else {}),
    )
    harness = _SmrHarness(scripts, total_slots)
    cluster = Cluster(harness, config)
    result = cluster.run([None] * n)
    return harness, result


class TestReplication:
    def test_all_replicas_converge(self):
        script = [KVCommand("put", f"k{i}", i) for i in range(6)]
        harness, result = _run({0: script}, total_slots=6)
        assert result.all_decided and result.agreed
        snapshots = [m.snapshot() for m in harness.machines.values()]
        assert all(s == snapshots[0] for s in snapshots)
        assert snapshots[0] == {f"k{i}": i for i in range(6)}

    def test_commands_apply_in_slot_order(self):
        script = [
            KVCommand("put", "x", 1),
            KVCommand("put", "x", 2),
            KVCommand("delete", "x"),
            KVCommand("put", "x", 3),
        ]
        harness, result = _run({0: script}, total_slots=4)
        assert result.agreed
        machine = harness.machines[1]
        assert machine.snapshot() == {"x": 3}
        assert [slot for slot, _cmd, _r in machine.applied] == [0, 1, 2, 3]

    def test_steady_state_commits_are_two_delays_each(self):
        script = [KVCommand("put", f"k{i}", i) for i in range(5)]
        harness, result = _run({0: script}, total_slots=5)
        # Leader commits slot i at 2(i+1): 5 slots by t=10.
        leader_log = harness.logs[0]
        assert leader_log.applied_upto == 4
        assert result.kernel.metrics.decisions[0].decided_at <= 12.0

    def test_get_returns_committed_value(self):
        machine = KVStateMachine()
        machine.apply(0, KVCommand("put", "a", 10))
        assert machine.apply(1, KVCommand("get", "a")) == 10
        assert machine.apply(2, KVCommand("get", "missing")) is None

    def test_unknown_command_is_skipped_deterministically(self):
        machine = KVStateMachine()
        machine.apply(0, "not-a-command")
        assert machine.applied_count == 1
        assert machine.snapshot() == {}

    def test_invalid_op_rejected(self):
        with pytest.raises(ValueError):
            KVCommand("increment", "x")


class TestLeaderHandover:
    def test_takeover_preserves_committed_prefix(self):
        """Leader A commits slots 0-2; leadership moves to B which proposes
        slots 3-4.  B must adopt A's slots, never overwrite them."""
        scripts = {
            0: [KVCommand("put", "a", 1), KVCommand("put", "b", 2),
                KVCommand("put", "c", 3)],
            1: [KVCommand("put", "a", 1), KVCommand("put", "b", 2),
                KVCommand("put", "c", 3), KVCommand("put", "d", 4),
                KVCommand("put", "e", 5)],
        }
        omega = leader_schedule([(0.0, 0), (8.0, 1)])
        harness, result = _run(scripts, total_slots=5, omega=omega, deadline=8000)
        assert result.all_decided and result.agreed
        final = harness.machines[2].snapshot()
        assert final == {"a": 1, "b": 2, "c": 3, "d": 4, "e": 5}

    def test_contending_proposers_agree_per_slot(self):
        """Both processes propose different commands for the same slots;
        every replica must apply the same winner per slot."""
        scripts = {
            0: [KVCommand("put", "winner", "p1")],
            1: [KVCommand("put", "winner", "p2")],
        }
        omega = leader_schedule([(0.0, 0), (4.0, 1)])
        harness, result = _run(scripts, total_slots=1, omega=omega, deadline=8000)
        assert result.agreed
        values = {m.snapshot().get("winner") for m in harness.machines.values()}
        assert len(values) == 1
