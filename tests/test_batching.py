"""Command batching: one consensus instance carries many commands.

Covers the edge cases the service layer depends on: empty batches are
deterministic no-ops, a batch of one reproduces the seed's
single-command semantics, duplicate ``(client, request_id)`` commands
apply at most once, and a 1-shard/batch-1 :class:`ShardedKV` matches the
unsharded :class:`ReplicatedLog` decision for decision on the same seed.
"""

import pytest

from repro.consensus.base import ConsensusProtocol
from repro.core.cluster import Cluster, ClusterConfig
from repro.shard import ScriptedClient, ShardConfig, ShardedKV
from repro.smr.kv import KVCommand, KVStateMachine
from repro.smr.log import Batch, ReplicatedLog, SmrConfig, smr_regions


class TestBatchValue:
    def test_batch_is_ordered_and_sized(self):
        commands = (KVCommand("put", "a", 1), KVCommand("put", "b", 2))
        batch = Batch(commands)
        assert len(batch) == 2
        assert tuple(batch) == commands

    def test_empty_batch_is_still_a_log_entry(self):
        batch = Batch()
        assert len(batch) == 0
        assert bool(batch), "an empty batch is a no-op entry, not a falsy value"

    def test_batch_normalises_any_iterable(self):
        batch = Batch([KVCommand("put", "a", 1)])
        assert isinstance(batch.commands, tuple)


class TestBatchApplication:
    def test_empty_batch_applies_as_noop(self):
        machine = KVStateMachine()
        machine.apply(0, KVCommand("put", "x", 1))
        results = machine.apply(1, Batch())
        assert results == []
        assert machine.snapshot() == {"x": 1}
        assert machine.batches_applied == 1
        assert machine.empty_batches == 1  # tracked apart, for fill stats
        assert machine.applied_count == 1  # no per-command entries added

    def test_batch_of_one_equals_single_command(self):
        """batch_max=1 must reproduce the seed's unbatched behaviour."""
        single, batched = KVStateMachine(), KVStateMachine()
        script = [
            KVCommand("put", "x", 1),
            KVCommand("get", "x"),
            KVCommand("delete", "x"),
            KVCommand("get", "x"),
        ]
        for slot, command in enumerate(script):
            single_result = single.apply(slot, command)
            batch_results = batched.apply(slot, Batch((command,)))
            assert batch_results == [single_result]
        assert single.snapshot() == batched.snapshot()
        assert single.applied_count == batched.applied_count
        # the same (slot, command, result) entries, in the same order
        assert single.applied == batched.applied

    def test_batch_applies_in_order_within_slot(self):
        machine = KVStateMachine()
        results = machine.apply(
            0,
            Batch(
                (
                    KVCommand("put", "k", "first"),
                    KVCommand("put", "k", "second"),
                    KVCommand("get", "k"),
                )
            ),
        )
        assert results == [None, None, "second"]
        assert machine.snapshot() == {"k": "second"}

    def test_non_command_entries_inside_batch_are_skipped(self):
        machine = KVStateMachine()
        results = machine.apply(0, Batch(("not-a-command",)))
        assert results == [None]
        assert machine.snapshot() == {}


class TestDeduplication:
    def test_duplicate_identity_applies_at_most_once(self):
        machine = KVStateMachine()
        first = KVCommand("put", "k", "v1", client=1, request_id=0)
        machine.apply(0, first)
        machine.apply(1, KVCommand("put", "k", "v2"))  # anonymous overwrite
        # A retry of request (1, 0) must NOT re-execute the put.
        result = machine.apply(2, first)
        assert machine.snapshot() == {"k": "v2"}
        assert result is None  # the original put's result, replayed
        assert machine.duplicates == 1

    def test_duplicate_read_returns_original_result(self):
        machine = KVStateMachine()
        machine.apply(0, KVCommand("put", "k", 10))
        read = KVCommand("get", "k", client=2, request_id=7)
        assert machine.apply(1, read) == 10
        machine.apply(2, KVCommand("put", "k", 99))
        # The retried read answers from the first execution, not the
        # current state: exactly-once semantics for the client.
        assert machine.apply(3, read) == 10
        assert machine.duplicates == 1

    def test_duplicates_within_one_batch(self):
        machine = KVStateMachine()
        command = KVCommand("delete", "gone", client=3, request_id=1)
        results = machine.apply(0, Batch((command, command)))
        assert results == [None, None]
        assert machine.duplicates == 1

    def test_anonymous_commands_are_never_deduplicated(self):
        machine = KVStateMachine()
        command = KVCommand("put", "k", 1)
        machine.apply(0, command)
        machine.apply(1, command)
        assert machine.duplicates == 0
        assert command.identity is None


class _BatchLogHarness(ConsensusProtocol):
    """The leader commits a script of batches; everybody replicates."""

    name = "batch-log"

    def __init__(self, batches):
        self.batches = batches
        self.machines = {}
        self.logs = {}

    def regions(self, n, m):
        return smr_regions(n)

    def tasks(self, env, value):
        machine = KVStateMachine()
        log = ReplicatedLog(env, machine.apply)
        self.machines[int(env.pid)] = machine
        self.logs[int(env.pid)] = log

        def driver():
            if env.leader() == env.pid:
                for slot, commands in enumerate(self.batches):
                    yield from log.propose_batch(slot, commands)
            while log.applied_upto < len(self.batches) - 1:
                yield env.gate_wait(log.commit_gate, timeout=10.0)
            env.decide(tuple(sorted(machine.snapshot().items())))

        return [("listener", log.listener()), ("driver", driver())]


class TestBatchedLog:
    def test_batched_slots_replicate_and_apply_in_order(self):
        batches = [
            (KVCommand("put", "a", 1), KVCommand("put", "b", 2)),
            (),  # an empty filler slot
            (KVCommand("put", "a", 3), KVCommand("delete", "b"),
             KVCommand("put", "c", 4)),
        ]
        harness = _BatchLogHarness(batches)
        cluster = Cluster(harness, ClusterConfig(3, 3, deadline=5_000))
        result = cluster.run([None] * 3)
        assert result.all_decided and result.agreed
        snapshots = [m.snapshot() for m in harness.machines.values()]
        assert all(s == {"a": 3, "c": 4} for s in snapshots)
        # every replica committed the identical batch per slot
        for pid, log in harness.logs.items():
            assert log.slots[0].value == Batch(batches[0])
            assert log.slots[1].value == Batch(())
            assert log.slots[2].value == Batch(batches[2])


SCRIPT = [
    ("put", "alpha", 1),
    ("put", "beta", 2),
    ("get", "alpha", None),
    ("put", "alpha", 3),
    ("delete", "beta", None),
    ("get", "beta", None),
]


class _SeedLogHarness(ConsensusProtocol):
    """The seed's unbatched replicated log driving the same script."""

    name = "seed-log"

    def __init__(self, commands):
        self.commands = commands
        self.machines = {}
        self.logs = {}

    def regions(self, n, m):
        return smr_regions(n)

    def tasks(self, env, value):
        machine = KVStateMachine()
        log = ReplicatedLog(env, machine.apply)
        self.machines[int(env.pid)] = machine
        self.logs[int(env.pid)] = log

        def driver():
            if env.leader() == env.pid:
                for slot, command in enumerate(self.commands):
                    yield from log.propose(slot, command)
            while log.applied_upto < len(self.commands) - 1:
                yield env.gate_wait(log.commit_gate, timeout=10.0)
            env.decide(tuple(sorted(machine.snapshot().items())))

        return [("listener", log.listener()), ("driver", driver())]


class TestShardedMatchesSeed:
    """A 1-shard/batch-1 service is the seed log, decision for decision."""

    def test_one_shard_batch_one_reproduces_seed_log(self):
        seed = 11
        commands = [
            KVCommand(op, key, value, client=0, request_id=rid)
            for rid, (op, key, value) in enumerate(SCRIPT)
        ]

        # Seed-style run: one unsharded ReplicatedLog, one command a slot.
        harness = _SeedLogHarness(commands)
        cluster = Cluster(harness, ClusterConfig(3, 3, seed=seed, deadline=5_000))
        result = cluster.run([None] * 3)
        assert result.all_decided and result.agreed
        seed_sequence = [
            harness.logs[0].slots[slot].value for slot in range(len(commands))
        ]

        # Sharded run: same seed, 1 shard, batch_max=1, scripted client
        # pinned to the shard leader so submissions arrive one at a time.
        service = ShardedKV(
            ShardConfig(n_shards=1, batch_max=1, seed=seed, deadline=5_000)
        )
        client = ScriptedClient(client_id=0, script=SCRIPT, pid=service.leader_of(0))
        report = service.run_workload([client])
        assert report.completed_requests == len(SCRIPT)

        # Decision for decision: slot i committed exactly command i,
        # wrapped in a singleton batch.
        shard_log = service.logs[(service.leader_of(0), 0)]
        sharded_sequence = [
            shard_log.slots[slot].value for slot in range(len(commands))
        ]
        assert [tuple(batch) for batch in sharded_sequence] == [
            (command,) for command in seed_sequence
        ]

        # And every replica of both runs converged on the identical state.
        seed_state = harness.machines[0].snapshot()
        for pid in range(3):
            assert harness.machines[pid].snapshot() == seed_state
            assert service.machine(pid, 0).snapshot() == seed_state

    def test_command_identity_survives_batching(self):
        machine = KVStateMachine()
        command = KVCommand("put", "k", 1, client=5, request_id=9)
        machine.apply(0, Batch((command,)))
        assert (5, 9) in machine.seen


class TestPropose:
    def test_invalid_op_still_rejected(self):
        with pytest.raises(ValueError):
            KVCommand("increment", "x")

    def test_smr_config_defaults_keep_seed_namespace(self):
        config = SmrConfig()
        assert config.region == "smr"
        assert config.topic == "smr"
