"""Latency models and the tracer."""

import random

import pytest

from repro.sim.latency import (
    AdversarialLatency,
    JitteredSynchrony,
    NominalLatency,
    PartialSynchrony,
)
from repro.sim.tracing import TraceEvent, Tracer


class TestNominal:
    def test_unit_delays(self):
        model = NominalLatency()
        rng = random.Random(0)
        assert model.message_delay(0, 1, 0.0, rng) == 1.0
        assert model.memory_request_delay(0, 0, 0.0, rng) == 1.0
        assert model.memory_response_delay(0, 0, 0.0, rng) == 1.0

    def test_declares_constant_delays(self):
        # The kernel's fast path skips the method calls for these.
        assert NominalLatency.constant_message_delay == 1.0
        assert NominalLatency.constant_request_delay == 1.0
        assert NominalLatency.constant_response_delay == 1.0

    def test_subclass_override_drops_matching_constant(self):
        # A NominalLatency subclass overriding one *_delay method must not
        # inherit the constant for it, or the override would be ignored.
        class SlowLinks(NominalLatency):
            def message_delay(self, src, dst, now, rng):
                return 10.0

        assert SlowLinks.constant_message_delay is None
        assert SlowLinks.constant_request_delay == 1.0
        assert SlowLinks.constant_response_delay == 1.0

    def test_subclass_override_takes_effect_in_kernel(self):
        from tests.conftest import env_of, make_kernel, run_single

        class SlowLinks(NominalLatency):
            def message_delay(self, src, dst, now, rng):
                return 10.0

        kernel = make_kernel(latency=SlowLinks())
        env0, env1 = env_of(kernel, 0), env_of(kernel, 1)

        def sender():
            yield env0.send(1, "ping", topic="t")

        def receiver():
            yield from env1.recv(topic="t")
            return env1.now

        kernel.spawn(0, "s", sender())
        task = run_single(kernel, 1, receiver())
        assert task.result == 10.0


class TestJitter:
    def test_bounds(self):
        model = JitteredSynchrony(jitter=0.3)
        rng = random.Random(1)
        for _ in range(100):
            delay = model.message_delay(0, 1, 0.0, rng)
            assert 1.0 <= delay <= 1.3

    def test_invalid_jitter_rejected(self):
        with pytest.raises(ValueError):
            JitteredSynchrony(jitter=1.5)
        with pytest.raises(ValueError):
            JitteredSynchrony(jitter=-0.1)


class TestPartialSynchrony:
    def test_chaos_before_gst(self):
        model = PartialSynchrony(gst=100.0, bound=2.0, chaos=50.0)
        rng = random.Random(2)
        pre = [model.message_delay(0, 1, 10.0, rng) for _ in range(200)]
        assert max(pre) > 10.0  # genuinely chaotic

    def test_bounded_after_gst(self):
        model = PartialSynchrony(gst=100.0, bound=2.0, chaos=50.0)
        rng = random.Random(2)
        post = [model.message_delay(0, 1, 200.0, rng) for _ in range(200)]
        assert all(1.0 <= d <= 2.0 for d in post)


class TestAdversarial:
    def test_override_applies(self):
        model = AdversarialLatency(
            lambda kind, a, b, now: 99.0 if kind == "msg" else None
        )
        rng = random.Random(0)
        assert model.message_delay(0, 1, 0.0, rng) == 99.0
        assert model.memory_request_delay(0, 0, 0.0, rng) == 1.0

    def test_fallback_base_model(self):
        model = AdversarialLatency(
            lambda kind, a, b, now: None, base=JitteredSynchrony(0.1)
        )
        rng = random.Random(0)
        assert 1.0 <= model.message_delay(0, 1, 0.0, rng) <= 1.1

    def test_memory_leg_overrides(self):
        def override(kind, actor, peer, now):
            if kind == "mem_req" and actor == 1:
                return 50.0
            if kind == "mem_resp" and peer == 2:
                return 60.0
            return None

        model = AdversarialLatency(override)
        rng = random.Random(0)
        assert model.memory_request_delay(1, 0, 0.0, rng) == 50.0
        assert model.memory_request_delay(0, 0, 0.0, rng) == 1.0
        assert model.memory_response_delay(0, 2, 0.0, rng) == 60.0


class TestTracer:
    def test_disabled_by_default_records_nothing(self):
        tracer = Tracer(enabled=False)
        tracer.record(1.0, "kind", "actor")
        assert tracer.events == []

    def test_records_when_enabled(self):
        tracer = Tracer(enabled=True)
        tracer.record(1.0, "send", "p1", dst="p2")
        assert len(tracer.events) == 1
        event = tracer.events[0]
        assert event.kind == "send" and event.detail["dst"] == "p2"

    def test_filters(self):
        tracer = Tracer(enabled=True)
        tracer.record(1.0, "send", "p1")
        tracer.record(2.0, "deliver", "p2")
        tracer.record(3.0, "send", "p2")
        assert len(list(tracer.of_kind("send"))) == 2
        assert len(list(tracer.by_actor("p2"))) == 2
        assert tracer.first("deliver").time == 2.0
        assert tracer.first("nothing") is None

    def test_truncation(self):
        tracer = Tracer(enabled=True, max_events=3)
        for i in range(10):
            tracer.record(float(i), "k", "a")
        assert len(tracer.events) == 3
        assert tracer.truncated

    def test_dump_format(self):
        tracer = Tracer(enabled=True)
        tracer.record(1.5, "send", "p1", topic="t")
        dump = tracer.dump()
        assert "send" in dump and "p1" in dump and "topic" in dump

    def test_event_str(self):
        event = TraceEvent(2.0, "invoke", "p1/main", {"op": "WriteOp"})
        assert "invoke" in str(event) and "WriteOp" in str(event)
