"""Property test: quorum reads are never older than a completed write.

The linearizability half of the one-sided read path, checked against the
state machine's commit order under adversarial link chaos:

* writers stream puts with globally unique values;
* readers issue ``quorum``-mode gets, recording each read's *start*
  instant and returned value;
* link filters inflate, duplicate and drop messages — the decision
  broadcasts and client replies lag arbitrarily while one-sided memory
  reads race ahead, which is exactly the new/old-inversion hazard the
  watermark write-back exists to close.

After the run, every read is checked against the committed per-key value
order (taken from the leader state machine's applied log): the returned
value must sit at or after the latest write whose client saw a reply
before the read began.  The in-run session tripwire
(``ledger.stale_reads``) must stay empty too.
"""

import hashlib

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import FaultScript
from repro.shard import READ_QUORUM, ShardConfig, ShardedKV
from repro.smr.kv import KVCommand

_PROPERTY_SETTINGS = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_KEYS = [f"qk{i}" for i in range(4)]


class _Writer:
    """Streams puts round-robin over the key set; records completions."""

    def __init__(self, client_id, n_ops, pid=None):
        self.client_id = client_id
        self.n_ops = n_ops
        self.pid = pid
        #: value -> completion instant (client-visible reply time)
        self.completions = {}

    def task(self, env, frontend, recorder):
        for request_id in range(self.n_ops):
            key = _KEYS[request_id % len(_KEYS)]
            value = f"w{self.client_id}-{request_id}"
            command = KVCommand(
                "put", key, value=value,
                client=self.client_id, request_id=request_id,
            )
            started = env.now
            result = yield from frontend.submit(command)
            self.completions[value] = env.now
            recorder.record(command, result, env.now - started)


class _Reader:
    """Issues quorum gets; records (key, start instant, returned value)."""

    def __init__(self, client_id, n_ops, pid=None):
        self.client_id = client_id
        self.n_ops = n_ops
        self.pid = pid
        self.reads = []

    def task(self, env, frontend, recorder):
        for request_id in range(self.n_ops):
            key = _KEYS[request_id % len(_KEYS)]
            command = KVCommand(
                "get", key,
                client=self.client_id, request_id=request_id,
            )
            started = env.now
            result = yield from frontend.get(command, mode=READ_QUORUM)
            self.reads.append((key, started, result))
            recorder.record(command, result, env.now - started)
            yield env.sleep(1.0)


def _commit_order(service, key):
    """Values committed to *key*, in slot order (first application only —
    dedup'd replays re-append to the applied log but decide nothing)."""
    shard = service.partitioner.shard_for(key)
    machine = service.machines[(service.leader_of(shard), shard)]
    order, seen = [], set()
    for _slot, command, _result in machine.applied:
        if (
            isinstance(command, KVCommand)
            and command.op == "put"
            and command.key == key
            and command.value not in seen
        ):
            seen.add(command.value)
            order.append(command.value)
    return order


def _check_reads_not_stale(service, writers, readers):
    completions = {}
    for writer in writers:
        completions.update(writer.completions)
    for key in _KEYS:
        order = _commit_order(service, key)
        position = {value: index for index, value in enumerate(order)}
        for reader in readers:
            for read_key, started, value in reader.reads:
                if read_key != key:
                    continue
                # the newest write completed before this read began
                floor = -1
                for committed_value, index in position.items():
                    completed = completions.get(committed_value)
                    if completed is not None and completed <= started and index > floor:
                        floor = index
                if floor >= 0:
                    assert value in position, (
                        f"read of {key} returned {value!r}, never committed"
                    )
                    assert position[value] >= floor, (
                        f"STALE: read of {key} started at {started} returned "
                        f"{value!r} (commit #{position[value]}) but "
                        f"{order[floor]!r} (commit #{floor}) completed earlier"
                    )


@_PROPERTY_SETTINGS
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    delay_factor=st.floats(min_value=1.0, max_value=6.0),
    duplicate=st.floats(min_value=0.0, max_value=0.4),
    drop=st.floats(min_value=0.0, max_value=0.2),
    chaos_until=st.floats(min_value=100.0, max_value=600.0),
)
def test_quorum_reads_never_return_older_than_a_completed_write(
    seed, delay_factor, duplicate, drop, chaos_until
):
    script = FaultScript()
    # chaos on the broadcast/reply paths out of the (single) leader p1 and
    # between the reader processes — the one-sided reads bypass all of it
    for src, dst in ((0, 1), (0, 2), (1, 2)):
        script.at(5.0).delay_link(
            src, dst, factor=delay_factor, until=chaos_until
        )
        script.at(6.0).duplicate_link(
            src, dst, prob=duplicate, until=chaos_until
        )
    script.at(7.0).drop_link(1, 0, prob=drop, until=chaos_until)
    service = ShardedKV(
        ShardConfig(
            n_shards=2, n_processes=3, batch_max=4, seed=seed,
            read_mode=READ_QUORUM, retry_timeout=25.0,
            deadline=200_000.0, faults=script,
        )
    )
    writers = [_Writer(1, 16, pid=0), _Writer(2, 16, pid=1)]
    readers = [_Reader(11, 16, pid=1), _Reader(12, 16, pid=2)]
    report = service.run_workload(writers + readers)
    assert report.ok, report.summary()
    assert service.kernel.metrics.stale_reads == []
    _check_reads_not_stale(service, writers, readers)


def _read_run_hash(seed: int) -> str:
    """One fixed quorum-read workload, digested: every read a reader saw,
    every per-key commit order, and the kernel's event counters."""
    service = ShardedKV(
        ShardConfig(
            n_shards=2, n_processes=3, batch_max=4, seed=seed,
            read_mode=READ_QUORUM, retry_timeout=25.0, deadline=200_000.0,
        )
    )
    writers = [_Writer(1, 8, pid=0), _Writer(2, 8, pid=1)]
    readers = [_Reader(11, 8, pid=1), _Reader(12, 8, pid=2)]
    report = service.run_workload(writers + readers)
    assert report.ok, report.summary()
    _check_reads_not_stale(service, writers, readers)
    digest = hashlib.sha256()
    for reader in readers:
        for key, started, value in reader.reads:
            digest.update(f"R c{reader.client_id} {key} @{started} {value!r}\n".encode())
    for key in _KEYS:
        digest.update(f"C {key} {_commit_order(service, key)}\n".encode())
    kernel = service.kernel
    digest.update(
        f"pushed={kernel.queue.pushed} popped={kernel.queue.popped} "
        f"now={kernel.now}".encode()
    )
    return digest.hexdigest()


class TestReadDeterminism:
    def test_quorum_read_run_replays_identically(self):
        assert _read_run_hash(7) == _read_run_hash(7)

    def test_seed_sweep(self, seed_sweep):
        """Replay determinism across many seeds (off by default).

        Enable with ``pytest --seed-sweep N``: reruns the quorum-read
        trace-hash check for seeds ``0..N-1`` in one process, mirroring
        the chaos sweep in test_fault_properties.py.
        """
        if not seed_sweep:
            pytest.skip("enable with --seed-sweep N")
        for seed in range(seed_sweep):
            assert _read_run_hash(seed) == _read_run_hash(seed), (
                f"seed {seed} diverged"
            )
