"""The pluggable-scheduler contract: frontier, parity, watchdog.

The load-bearing property is *parity*: a run under ``FifoScheduler`` must
be bit-for-bit identical — trace hash, queue counters, final time — to a
run with no scheduler at all.  Everything the model checker does sits on
that equivalence: if index 0 of the frontier were not exactly what the
default loop fires next, "diverge at step N" would be meaningless.
"""

from __future__ import annotations

import hashlib

import pytest

from conftest import env_of, make_kernel
from repro.consensus.omega import crash_aware_omega
from repro.consensus.protected_memory_paxos import ProtectedMemoryPaxos
from repro.core.cluster import Cluster, ClusterConfig
from repro.errors import LivelockError
from repro.sim.event_queue import EV_RESUME, EV_WAKE, EventQueue
from repro.failures.script import FaultScript
from repro.sim.schedule import (
    FifoScheduler,
    RandomScheduler,
    Scheduler,
    build_frontier,
)

from test_determinism_replay import _run_mixed, _trace_hash


# ---------------------------------------------------------------------------
# frontier construction
# ---------------------------------------------------------------------------
class TestFrontier:
    def test_ready_lane_precedes_same_instant_heap_entries(self):
        queue = EventQueue()
        queue.push(5.0, EV_WAKE, "heap-a")
        queue.push(5.0, EV_WAKE, "heap-b")
        queue.push(9.0, EV_WAKE, "later")
        queue.push_ready(EV_RESUME, "ready-a")
        frontier = build_frontier(queue, 5.0)
        assert [fe.lane for fe in frontier] == ["ready", "heap", "heap"]
        assert [fe.a for fe in frontier] == ["ready-a", "heap-a", "heap-b"]
        # seq order within the heap slice, and "later" excluded
        assert frontier[1].seq < frontier[2].seq

    def test_seqs_are_shared_across_lanes_and_stable(self):
        queue = EventQueue()
        queue.push(1.0, EV_WAKE, "h")
        queue.push_ready(EV_RESUME, "r")
        frontier = build_frontier(queue, 1.0)
        seqs = {fe.a: fe.seq for fe in frontier}
        assert seqs["h"] == 1 and seqs["r"] == 2

    def test_take_ready_and_remove_heap_entry(self):
        queue = EventQueue()
        queue.push(2.0, EV_WAKE, "x")
        queue.push(2.0, EV_WAKE, "y")
        queue.push_ready(EV_RESUME, "r1")
        queue.push_ready(EV_RESUME, "r2")
        frontier = build_frontier(queue, 2.0)
        taken = queue.take_ready(1)
        assert taken[1] == "r2" and queue.ready_count == 1
        queue.remove_heap_entry(frontier[3].raw)  # "y"
        assert [e[3] for e in queue.heap_frontier(2.0)] == ["x"]

    def test_pop_ready_contract_unchanged(self):
        # the default hot loop (and its tests) still see 4-tuples
        queue = EventQueue()
        queue.push_ready(EV_RESUME, "task", "value")
        assert queue.pop_ready() == (EV_RESUME, "task", "value", None)


# ---------------------------------------------------------------------------
# parity: FifoScheduler == default loop, bit for bit
# ---------------------------------------------------------------------------
def _chaos_hash(seed: int, scheduled: bool) -> str:
    """A churny PMP run's full observable fingerprint."""
    script = FaultScript()
    script.at(1.0).crash_process(0).recover(at=30.0)
    script.at(2.0).partition({0, 1}, {2}).heal(at=25.0)
    cluster = Cluster(
        ProtectedMemoryPaxos(),
        ClusterConfig(3, 3, seed=seed, trace=True, deadline=60_000),
        script,
    )
    kernel = cluster.kernel
    kernel.omega = crash_aware_omega(kernel)
    if scheduled:
        kernel.scheduler = FifoScheduler()
    result = cluster.run(["a", "b", "c"])
    assert result.all_decided
    digest = hashlib.sha256()
    for event in kernel.tracer.events:
        digest.update(str(event).encode())
    digest.update(
        f"pushed={kernel.queue.pushed} popped={kernel.queue.popped} "
        f"now={kernel.now}".encode()
    )
    return digest.hexdigest()


class TestFifoParity:
    def test_chaos_cluster_trace_is_bit_identical(self):
        assert _chaos_hash(7, scheduled=False) == _chaos_hash(7, scheduled=True)

    def test_mixed_sharded_workload_is_bit_identical(self):
        # the determinism-replay suite's heavy workload: sharded KV with a
        # BFT shard, a memory crash, and 12 clients
        service, report = _run_mixed(23)
        assert report.ok
        default = _trace_hash(service)
        service, report = _run_mixed(23, scheduler=FifoScheduler())
        assert report.ok
        assert _trace_hash(service) == default

    def test_scheduler_attribute_defaults_to_none(self):
        kernel = make_kernel()
        assert kernel.scheduler is None


# ---------------------------------------------------------------------------
# custom scheduler behaviour
# ---------------------------------------------------------------------------
class TestCustomSchedulers:
    def test_random_scheduler_is_reproducible(self):
        assert _chaos_random_hash(3) == _chaos_random_hash(3)

    def test_scheduler_sees_every_step(self):
        class Counting(Scheduler):
            def __init__(self):
                self.picks = 0

            def pick(self, kernel, now, frontier):
                self.picks += 1
                assert frontier, "frontier must never be empty"
                return 0

        kernel = make_kernel(n_processes=1)
        counting = Counting()
        kernel.scheduler = counting

        def task(env):
            yield env.sleep(1.0)
            yield env.sleep(1.0)

        kernel.spawn(0, "t", task(env_of(kernel, 0)))
        kernel.run()
        assert counting.picks == kernel.queue.popped == 3


def _chaos_random_hash(seed: int) -> str:
    cluster = Cluster(
        ProtectedMemoryPaxos(),
        ClusterConfig(3, 3, seed=1, trace=True, deadline=60_000),
    )
    cluster.kernel.scheduler = RandomScheduler(seed)
    result = cluster.run(["a", "b", "c"])
    assert result.all_decided
    digest = hashlib.sha256()
    for event in cluster.kernel.tracer.events:
        digest.update(str(event).encode())
    return digest.hexdigest()


# ---------------------------------------------------------------------------
# livelock watchdog (satellite: max_events diagnostic budget)
# ---------------------------------------------------------------------------
class TestLivelockWatchdog:
    def _spinner(self, kernel):
        def spin(env):
            while True:
                yield env.sleep(1.0)

        kernel.spawn(0, "spinner", spin(env_of(kernel, 0)), daemon=True)

    def test_default_loop_raises_diagnostic(self):
        kernel = make_kernel(n_processes=1)
        self._spinner(kernel)
        with pytest.raises(LivelockError) as err:
            kernel.run(max_events=25)
        message = str(err.value)
        assert "max_events=25" in message
        assert "wake" in message  # per-kind queue-depth snapshot
        assert "parked" in message

    def test_scheduled_loop_raises_too(self):
        kernel = make_kernel(n_processes=1)
        kernel.scheduler = FifoScheduler()
        self._spinner(kernel)
        with pytest.raises(LivelockError):
            kernel.run(max_events=25)

    def test_flight_dump_attached_when_obs_present(self):
        from repro.obs.runtime import attach

        kernel = make_kernel(n_processes=1)
        attach(kernel)
        self._spinner(kernel)
        with pytest.raises(LivelockError) as err:
            kernel.run(max_events=25)
        dump = err.value.flight_dump
        assert dump is not None and "livelock" in dump["reason"]

    def test_budget_not_hit_is_silent(self):
        kernel = make_kernel(n_processes=1)

        def task(env):
            yield env.sleep(1.0)

        kernel.spawn(0, "t", task(env_of(kernel, 0)))
        kernel.run(max_events=100)
        assert kernel.now == 1.0
