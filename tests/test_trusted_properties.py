"""Property-based tests for the trusted transport under random schedules."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.broadcast.nonequivocating import neb_regions
from repro.sim.latency import JitteredSynchrony
from repro.trusted.transport import TrustedTransport
from repro.types import ProcessId

from tests.conftest import env_of, make_kernel

_SETTINGS = settings(
    max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def _session(seed, jitter, plan):
    """*plan*: list of (sender, message) broadcasts, issued concurrently."""
    kernel = make_kernel(
        3, 3, regions=neb_regions(range(3)),
        latency=JitteredSynchrony(jitter), seed=seed,
    )
    transports = []
    for p in range(3):
        env = env_of(kernel, p)
        transport = TrustedTransport(env)
        kernel.spawn(p, "neb", transport.neb.delivery_daemon())
        transports.append(transport)
    for sender, message in plan:
        def job(t=transports[sender], m=message):
            yield from t.t_broadcast(m)
        kernel.spawn(sender, f"send-{message}", job())
    kernel.run(until=4000)
    return transports


@st.composite
def _plans(draw):
    n_messages = draw(st.integers(1, 5))
    return [
        (draw(st.integers(0, 2)), f"m{i}")
        for i in range(n_messages)
    ]


class TestTrustedDeliveryProperties:
    @_SETTINGS
    @given(seed=st.integers(0, 10_000), jitter=st.floats(0.0, 0.7), plan=_plans())
    def test_every_broadcast_reaches_every_process(self, seed, jitter, plan):
        transports = _session(seed, jitter, plan)
        expected = {m for _s, m in plan}
        for transport in transports:
            got = {d.message for d in transport.delivered_log}
            assert expected <= got

    @_SETTINGS
    @given(seed=st.integers(0, 10_000), plan=_plans())
    def test_no_sender_is_dropped_without_cause(self, seed, plan):
        transports = _session(seed, 0.5, plan)
        for transport in transports:
            assert transport.dropped == set()

    @_SETTINGS
    @given(seed=st.integers(0, 10_000), plan=_plans())
    def test_per_sender_fifo(self, seed, plan):
        transports = _session(seed, 0.4, plan)
        order = {m: i for i, (_s, m) in enumerate(plan)}
        for transport in transports:
            for sender in range(3):
                sent_by_sender = [
                    m for s, m in plan if s == sender
                ]
                seen = [
                    d.message
                    for d in transport.delivered_log
                    if d.sender == ProcessId(sender)
                ]
                assert seen == sent_by_sender
