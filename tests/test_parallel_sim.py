"""Parallel simulation: conservative barriers, fabric, cross-W determinism.

The contract under test (see ``repro.sim.parallel``):

* **sequential equivalence** — one cell under the parallel driver with a
  deadline is bit-identical (trace hash, clock, event count) to the same
  kernel run directly with ``run(until=...)``;
* **worker-count invariance** — per-cell trace hashes, final KV digests
  and every summary figure are identical for W = 1, 2, 4 ... on the same
  cell layout, including under chaos + live reconfiguration, because
  barriers and the fabric merge are pure functions of the cells' own
  executions;
* **mode invariance** — fork mode (real OS processes) produces the same
  hashes, counters and round count as inline mode;
* **gateway at-most-once** — duplicate fabric requests are answered from
  the done table or absorbed by the in-flight guard, never re-applied;
* **ring-aware packing** — arc fractions sum to 1, LPT placement is a
  pure function of the weights, and the epoch-activation hook lets a
  split reweight partitions at the cutover instant.

Satellite: the classic (``batch_chains=False``) quorum read's watermark
write-back rides the entry-fetch chain — an unconfirmed read costs the
same two memory rounds as a confirmed one and still leaves the watermark
durable at a majority.
"""

import pytest

from repro import (
    ElasticConfig,
    ElasticKV,
    FaultScript,
    OperationMix,
    SplitShard,
    UniformKeys,
)
from repro.consensus.probes import watermark_key
from repro.mem.layout import MemoryLayout
from repro.shard.gateway import (
    GATEWAY_TOPIC,
    CellRouter,
    RemoteClient,
    client_cell_factory,
    gateway_reply_topic,
    kv_state_digest,
    service_cell_factory,
    spawn_gateway,
)
from repro.shard.partitioner import HashRing, WorkerAssignment, arc_fractions
from repro.sim.environment import ProcessEnv
from repro.sim.kernel import EV_DELIVER, Kernel, SimConfig
from repro.sim.parallel import Cell, FabricPort, ParallelKernel
from repro.smr.kv import KVCommand, KVStateMachine
from repro.smr.log import ReplicatedLog, SmrConfig, smr_regions, smr_rx_regions
from repro.net.messages import Envelope
from repro.obs.whatif import run_hash
from repro.types import BOTTOM, ProcessId


def bare_kernel(n_processes=1, seed=0):
    return Kernel(
        SimConfig(n_processes=n_processes, n_memories=0, seed=seed),
        MemoryLayout([]),
    )


# ----------------------------------------------------------------------
# barrier primitives
# ----------------------------------------------------------------------
class TestBarrierPrimitives:
    def test_idle_before_and_next_time(self):
        kernel = bare_kernel()
        assert kernel.queue.idle_before(5.0)
        assert kernel.queue.next_time() is None
        env = ProcessEnv(kernel, ProcessId(0))
        kernel.spawn(0, "t", (None for _ in ()))  # scheduled start at t=0
        assert not kernel.queue.idle_before(5.0)
        assert kernel.queue.next_time() == 0.0
        kernel.run(until=0.0)
        kernel.queue.push(7.0, EV_DELIVER, Envelope(
            ProcessId(0), ProcessId(0), "x", None, 0.0))
        assert kernel.queue.idle_before(7.0)
        assert not kernel.queue.idle_before(7.5)
        assert kernel.queue.next_time() == 7.0

    def test_inject_delivers_and_counts(self):
        kernel = bare_kernel()
        env = ProcessEnv(kernel, ProcessId(0))
        got = []

        def task():
            e = yield from env.recv(topic="fab")
            got.append(e.payload)

        kernel.spawn(0, "t", task())
        kernel.inject(
            Envelope(ProcessId(0), ProcessId(0), "fab", "hello", 0.0,
                     msg_id=("x", 1, 0, 1)),
            arrival=3.0,
        )
        assert kernel.network.injected == 1
        kernel.run(until=10.0)
        assert got == ["hello"]

    def test_inject_into_the_past_raises(self):
        kernel = bare_kernel()
        kernel.inject(
            Envelope(ProcessId(0), ProcessId(0), "fab", None, 0.0,
                     msg_id=("x", 1, 0, 1)),
            arrival=5.0,
        )
        kernel.run(until=10.0)
        assert kernel.now == 5.0
        with pytest.raises(ValueError):
            kernel.inject(
                Envelope(ProcessId(0), ProcessId(0), "fab", None, 0.0),
                arrival=4.0,
            )

    def test_lookahead_comes_from_the_latency_model(self):
        kernel = bare_kernel()
        assert kernel.config.latency.lookahead() == \
            kernel.config.latency.cross_partition_delay
        kernel.config.latency.cross_partition_delay = 0.0
        with pytest.raises(ValueError):
            kernel.config.latency.lookahead()

    def test_fabric_port_stamps_arrival_and_sequence(self):
        kernel = bare_kernel()
        port = FabricPort(0, lookahead=2.5)
        port.bind(kernel)
        port.post(1, 0, "t", "a")
        port.post(1, 0, "t", "b")
        port.post(2, 3, "u", "c")
        entries = port.drain()
        assert port.outbox == [] and port.posted == 3
        assert [e[:4] for e in entries] == [
            (2.5, 0, 1, 1), (2.5, 0, 1, 2), (2.5, 0, 2, 1)]


# ----------------------------------------------------------------------
# ring-aware worker assignment
# ----------------------------------------------------------------------
class TestWorkerAssignment:
    def test_arc_fractions_cover_the_circle(self):
        ring = HashRing(0, [0, 1, 2, 3], vnodes=32, salt="")
        arcs = arc_fractions(ring)
        assert set(arcs) == {0, 1, 2, 3}
        assert sum(arcs.values()) == pytest.approx(1.0)
        assert all(arc > 0 for arc in arcs.values())

    def test_lpt_packing_is_deterministic_and_balanced(self):
        a = WorkerAssignment(range(6), 2)
        b = WorkerAssignment(range(6), 2)
        assert a.workers == b.workers
        assert sorted(cell for bucket in a.workers for cell in bucket) == list(range(6))
        # equal weights, even count: perfectly even packing
        assert a.imbalance() == pytest.approx(1.0)
        a.set_weights({0: 10.0, 1: 1.0, 2: 1.0, 3: 1.0, 4: 1.0, 5: 1.0})
        # the heavy cell sits alone-ish: everything light lands opposite
        heavy_worker = a.worker_of[0]
        assert a.loads[heavy_worker] == max(a.loads)
        assert a.imbalance() > 1.0

    def test_workers_clamped_to_cell_count(self):
        a = WorkerAssignment([0, 1], 8)
        assert a.n_workers == 2

    def test_rebalance_follows_the_ring(self):
        ring = HashRing(0, [0, 1, 2], vnodes=16, salt="")
        a = WorkerAssignment(range(3), 2)
        a.rebalance(ring, {0: 0, 1: 1, 2: 2})
        assert a.rebalances == 1
        arcs = arc_fractions(ring)
        assert sum(a.loads) == pytest.approx(sum(arcs.values()))

    def test_epoch_activation_hook_fires_at_cutover(self):
        service = ElasticKV(
            ElasticConfig(
                n_shards=2, n_processes=3, batch_max=4, seed=5,
                retry_timeout=25.0, deadline=60_000.0,
            )
        )
        activated = []
        service.on_activation.append(lambda epoch: activated.append(epoch.number))
        from repro import ClosedLoopClient

        writers = [
            ClosedLoopClient(
                client_id=i, n_ops=40, keys=UniformKeys(30),
                think_time=6.0, pid=i % 2,
            )
            for i in range(2)
        ]
        service.schedule_reconfig(100.0, SplitShard())
        report = service.run_workload(writers)
        assert report.ok, report.summary()
        assert activated == [1]


# ----------------------------------------------------------------------
# sequential equivalence and cross-worker determinism
# ----------------------------------------------------------------------
def _traffic_kernel(seed=42):
    """A bare kernel with message traffic, as one self-contained cell."""
    kernel = bare_kernel(n_processes=3, seed=seed)
    envs = [ProcessEnv(kernel, ProcessId(p)) for p in range(3)]

    def pinger(p):
        env = envs[p]
        for i in range(15):
            yield env.send((p + 1) % 3, (p, i), topic="ring")
            yield from env.recv(topic="ring", timeout=50.0)

    for p in range(3):
        kernel.spawn(p, f"p{p}", pinger(p))
    return kernel


def _fingerprint(kernel):
    return (run_hash(kernel), kernel.now, kernel.queue.popped)


class TestSequentialEquivalence:
    def test_w1_is_bit_identical_to_the_plain_kernel(self):
        sequential = _traffic_kernel()
        sequential.run(until=500.0)

        driver = ParallelKernel(
            [lambda port: Cell(0, _traffic_kernel())], workers=1
        )
        driver.run(deadline=500.0)
        assert _fingerprint(driver.cells[0].kernel) == _fingerprint(sequential)


def _request_echo_factories(n=12):
    """Cell 0 sends *n* requests across the fabric; cell 1 echoes."""

    def requester(port):
        kernel = bare_kernel(seed=0)
        env = ProcessEnv(kernel, ProcessId(0))
        state = {"got": 0}

        def task():
            for i in range(n):
                port.post(1, 0, "ping", ("hi", i))
                yield from env.recv(topic="pong")
                state["got"] += 1

        kernel.spawn(0, "req", task())
        return Cell(0, kernel, goal=lambda: state["got"] >= n)

    def echoer(port):
        kernel = bare_kernel(seed=1)
        env = ProcessEnv(kernel, ProcessId(0))

        def task():
            while True:
                e = yield from env.recv(topic="ping")
                port.post(0, 0, "pong", e.payload)

        kernel.spawn(0, "echo", task())
        return Cell(1, kernel)

    return [requester, echoer]


def _digest(driver):
    """Everything the determinism contract compares, in one value."""
    report = driver.run_report()
    summaries = {
        cell: {k: v for k, v in s.items()}
        for cell, s in report["cells"].items()
    }
    return report["combined_hash"], summaries, report["run"]["rounds"]


class TestCrossWorkerDeterminism:
    def test_inline_and_fork_agree_on_the_fabric_workload(self):
        outcomes = []
        for workers, mode in ((1, "inline"), (2, "inline"), (2, "fork")):
            driver = ParallelKernel(
                _request_echo_factories(), workers=workers, mode=mode
            )
            result = driver.run()
            assert result.goal_met, (workers, mode)
            outcomes.append(_digest(driver))
        assert outcomes[0] == outcomes[1] == outcomes[2]

    @staticmethod
    def _mixed_factories(seed=11, n_clients=6, ops=40):
        """Two ElasticKV cells under chaos + a live split, remote clients."""
        service_cells = [0, 1]
        router = CellRouter(service_cells)
        mix = OperationMix(read_fraction=0.5)
        keys = UniformKeys(48)

        def make_service(cell):
            def build():
                script = FaultScript()
                script.at(150.0).crash_process(1).recover(at=250.0)
                service = ElasticKV(
                    ElasticConfig(
                        n_shards=2, n_processes=3, batch_max=4,
                        seed=seed + cell, retry_timeout=25.0,
                        deadline=10.0**7, faults=script,
                    )
                )
                service.schedule_reconfig(120.0, SplitShard())
                return service

            return build

        factories = [
            service_cell_factory(cell, make_service(cell))
            for cell in service_cells
        ]

        def clients():
            return [
                RemoteClient(
                    client_id=i, n_ops=ops, keys=keys, mix=mix,
                    route=router.cell_for, pid=i % 3,
                )
                for i in range(n_clients)
            ]

        factories.append(
            client_cell_factory(2, clients, n_processes=3, seed=seed + 100)
        )
        return factories, n_clients * ops

    def _mixed_digest(self, workers, seed=11):
        factories, total = self._mixed_factories(seed=seed)
        driver = ParallelKernel(factories, workers=workers)
        result = driver.run()
        assert result.goal_met, f"W={workers} seed={seed}"
        digest = _digest(driver)
        completed = sum(
            s["summary"]["completed"]
            for s in digest[1].values()
            if s["summary"] and "completed" in s["summary"]
        )
        assert completed == total
        return digest

    def test_chaos_plus_reconfig_is_worker_count_invariant(self):
        reference = self._mixed_digest(1)
        # the mixed workload exercises what it claims: both services
        # split (3 shards) and every cell saw fabric traffic
        shards = [
            s["summary"]["shards"]
            for s in reference[1].values()
            if s["summary"] and "shards" in s["summary"]
        ]
        assert shards == [[0, 1, 2], [0, 1, 2]]
        assert all(s["injected"] > 0 for s in reference[1].values())
        for workers in (2, 4):
            assert self._mixed_digest(workers) == reference, f"W={workers}"

    def test_seed_sweep(self, seed_sweep):
        """Cross-worker determinism across many seeds (off by default).

        Enable with ``pytest --seed-sweep N``: re-runs the mixed
        chaos + reconfig workload at W=1 and W=2 for seeds ``0..N-1``.
        """
        if not seed_sweep:
            pytest.skip("enable with --seed-sweep N")
        for seed in range(seed_sweep):
            assert self._mixed_digest(1, seed=seed) == \
                self._mixed_digest(2, seed=seed), f"seed {seed} diverged"


# ----------------------------------------------------------------------
# the gateway's at-most-once contract
# ----------------------------------------------------------------------
class TestGatewayDedup:
    def test_duplicates_are_absorbed_and_replayed(self):
        from repro import ShardConfig, ShardedKV

        gateway_state = {}

        def service_factory(port):
            service = ShardedKV(
                ShardConfig(n_shards=1, batch_max=4, seed=3, deadline=10.0**7)
            )
            service.cluster.install_faults()
            gateway_state["live"] = spawn_gateway(service, port, pid=0)
            return Cell(
                0, service.kernel, goal=service._converged,
                summarize=lambda: kv_state_digest(service),
            )

        outcome = {}

        def client_factory(port):
            kernel = bare_kernel(seed=9)
            env = ProcessEnv(kernel, ProcessId(0))

            def task():
                request = ("req", 1, 0, 7, 0, "put", "k", "v1")
                # duplicate while in flight: the guard must drop it and
                # exactly one reply may come back
                port.post(0, 0, GATEWAY_TOPIC, request)
                port.post(0, 0, GATEWAY_TOPIC, request)
                first = yield from env.recv(topic=gateway_reply_topic(7))
                second = yield from env.recv(
                    topic=gateway_reply_topic(7), timeout=300.0
                )
                # duplicate after completion: answered from the done table
                port.post(0, 0, GATEWAY_TOPIC, request)
                replay = yield from env.recv(topic=gateway_reply_topic(7))
                check = ("req", 1, 0, 7, 1, "get", "k", None)
                port.post(0, 0, GATEWAY_TOPIC, check)
                read = yield from env.recv(
                    topic=gateway_reply_topic(7),
                    match=lambda e: e.payload[2] == 1,
                )
                outcome.update(
                    first=first.payload, second=second,
                    replay=replay.payload, read=read.payload,
                )

            kernel.spawn(0, "client", task())
            return Cell(
                1, kernel, goal=lambda: "read" in outcome
            )

        driver = ParallelKernel([service_factory, client_factory], workers=2)
        result = driver.run()
        assert result.goal_met
        assert outcome["second"] is None  # in-flight duplicate: dropped
        assert outcome["replay"] == outcome["first"]  # done table replay
        assert outcome["read"][3] == "v1"  # applied exactly once
        assert gateway_state["live"]["requests"] == 4
        # replies counts proxy completions (put + get); the done-table
        # replay re-posts the stored result without running a proxy
        assert gateway_state["live"]["replies"] == 2


# ----------------------------------------------------------------------
# satellite: fused watermark write-back on the classic quorum read
# ----------------------------------------------------------------------
class TestFusedWatermarkWriteBack:
    def _committed_cluster(self, config):
        """A bare 3x3 kernel whose leader committed slots 0..2 classic."""
        kernel = Kernel(
            SimConfig(n_processes=3, n_memories=3, seed=1),
            MemoryLayout(smr_regions(3) + smr_rx_regions(3)),
        )
        envs = {p: ProcessEnv(kernel, ProcessId(p)) for p in range(3)}
        machine = KVStateMachine()
        log = ReplicatedLog(
            envs[0], machine.apply, config=config, leader_fn=lambda: 0
        )

        def leader():
            for slot in range(3):
                yield from log.propose(slot, KVCommand("put", f"k{slot}", slot))

        kernel.spawn(0, "leader", leader())
        kernel.run(until=1_000.0)
        assert log.applied_upto == 2
        return kernel, envs, log

    def test_unconfirmed_read_installs_the_watermark_in_two_rounds(self):
        config = SmrConfig(batch_chains=False, publish_watermark=True)
        kernel, envs, log = self._committed_cluster(config)
        rx = log.rx_region
        leader_register = watermark_key(rx, 0)
        holders = [
            m for m in kernel.memories if m.peek(leader_register) == 2
        ]
        assert len(holders) >= 2, "classic publish must reach a majority"
        # strip the register down to a single memory: every quorum view
        # now sees the max watermark unconfirmed (minority residue)
        for memory in holders[1:]:
            del memory.registers[tuple(leader_register)]

        elapsed = {}
        applied = {1: [], 2: []}

        def reader(pid):
            reader_log = ReplicatedLog(
                envs[pid],
                lambda slot, cmd, pid=pid: applied[pid].append((slot, cmd)),
                config=config,
                leader_fn=lambda: 0,
            )
            started = envs[pid].now
            result = yield from reader_log.quorum_read()
            elapsed[pid] = envs[pid].now - started
            assert result == 2

        kernel.spawn(2, "unconfirmed-reader", reader(2))
        kernel.run(until=2_000.0)
        assert [slot for slot, _ in applied[2]] == [0, 1, 2]
        # the write-back rode the entry fetch: the reader's own register
        # is durable at a majority, with no third round issued
        own = watermark_key(rx, 2)
        durable = sum(1 for m in kernel.memories if m.peek(own) == 2)
        assert durable >= 2

        # a second lagging reader now finds the watermark confirmed —
        # same virtual cost, and no write-back of its own
        kernel.spawn(1, "confirmed-reader", reader(1))
        kernel.run(until=3_000.0)
        assert [slot for slot, _ in applied[1]] == [0, 1, 2]
        assert all(m.peek(watermark_key(rx, 1)) is BOTTOM for m in kernel.memories)
        # the fused write-back is free: unconfirmed == confirmed latency
        assert elapsed[2] == elapsed[1]
