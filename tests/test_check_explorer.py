"""The model-checking harness: dependency relation, controlled
scheduling, sleep-set DFS, counterexample traces, and the PMP target."""

from __future__ import annotations

import json

import pytest

from repro.check import Budget, ControlledScheduler, TraceDivergence, explore
from repro.check.deps import GLOBAL, dependent, footprint, independent
from repro.check.inject import InjectionSpec, crash, revoke
from repro.check.scenarios import make_scenario
from repro.check.trace import (
    counterexample_to_dict,
    load_trace,
    replay_trace,
    save_trace,
)
from repro.sim.event_queue import (
    EV_ARRIVE,
    EV_CALL,
    EV_DELIVER,
    EV_OP_ARRIVE,
    EV_RESUME,
)
from repro.sim.faults import CrashProcess
from repro.sim.schedule import FrontierEntry


def _fe(kind, a=None, b=None, c=None, seq=1):
    return FrontierEntry("heap", None, None, 0.0, seq, kind, a, b, c)


class _Task:
    def __init__(self, pid):
        self.pid = pid
        self.label = f"t{pid}"


class _Envelope:
    def __init__(self, dst):
        self.dst = dst
        self.topic = "x"


class _Future:
    def __init__(self, mid, region):
        self.mid = mid
        self.op = _Op(region)


class _Op:
    def __init__(self, region):
        self.region = region


# ---------------------------------------------------------------------------
# dependency relation
# ---------------------------------------------------------------------------
class TestDeps:
    def test_same_process_resumes_are_dependent(self):
        f1 = footprint(_fe(EV_RESUME, _Task(0)))
        f2 = footprint(_fe(EV_RESUME, _Task(0)))
        assert dependent(f1, f2)

    def test_different_process_resumes_commute(self):
        assert independent(
            footprint(_fe(EV_RESUME, _Task(0))),
            footprint(_fe(EV_RESUME, _Task(1))),
        )

    def test_delivery_keys_on_destination_inbox(self):
        deliver = footprint(_fe(EV_DELIVER, _Envelope(1)))
        assert dependent(deliver, footprint(_fe(EV_RESUME, _Task(1))))
        assert independent(deliver, footprint(_fe(EV_RESUME, _Task(0))))

    def test_memory_ops_key_on_memory_and_region(self):
        a = footprint(_fe(EV_ARRIVE, _Task(0), _Future(0, "r1")))
        same = footprint(_fe(EV_OP_ARRIVE, _Task(1), None, (0, _Op("r1"))))
        other_region = footprint(_fe(EV_ARRIVE, _Task(0), _Future(0, "r2")))
        other_memory = footprint(_fe(EV_ARRIVE, _Task(0), _Future(1, "r1")))
        assert dependent(a, same)
        assert independent(a, other_region)
        assert independent(a, other_memory)

    def test_calls_faults_and_malformed_payloads_are_global(self):
        assert footprint(_fe(EV_CALL, lambda: None)) is GLOBAL
        assert footprint(_fe(EV_ARRIVE, None, None)) is GLOBAL
        assert dependent(GLOBAL, footprint(_fe(EV_RESUME, _Task(0))))


# ---------------------------------------------------------------------------
# controlled scheduler
# ---------------------------------------------------------------------------
class TestControlledScheduler:
    def _frontier(self, n=3):
        return [_fe(EV_RESUME, _Task(i), seq=i + 1) for i in range(n)]

    def test_default_is_index_zero_and_logged(self):
        sched = ControlledScheduler()
        assert sched.pick(None, 0.0, self._frontier()) == 0
        record = sched.log[0]
        assert record.chosen == 0
        assert [c.key for c in record.choices] == [("e", 1), ("e", 2), ("e", 3)]

    def test_plan_diverts_a_step(self):
        sched = ControlledScheduler(plan={1: ("entry", 2)})
        assert sched.pick(None, 0.0, self._frontier()) == 0
        assert sched.pick(None, 0.0, self._frontier()) == 2

    def test_plan_out_of_range_is_trace_divergence(self):
        sched = ControlledScheduler(plan={0: ("entry", 9)})
        with pytest.raises(TraceDivergence):
            sched.pick(None, 0.0, self._frontier())

    def test_injections_respect_group_budgets(self):
        specs = (
            InjectionSpec("a", [(0.0, CrashProcess(0))], group="crash"),
            InjectionSpec("b", [(0.0, CrashProcess(1))], group="crash"),
        )
        sched = ControlledScheduler(
            plan={0: ("inject", "a"), 1: ("inject", "b")},
            specs=specs,
            group_budgets={"crash": 1},
        )
        injection = sched.pick(None, 0.0, self._frontier())
        assert injection.name == "a"
        # budget spent: "b" is no longer eligible
        with pytest.raises(TraceDivergence):
            sched.pick(None, 0.0, self._frontier())
        assert sched.injections_used == ["a"]

    def test_max_step_window(self):
        spec = InjectionSpec("late", [(0.0, CrashProcess(0))], max_step=0)
        sched = ControlledScheduler(plan={1: ("inject", "late")}, specs=(spec,))
        sched.pick(None, 0.0, self._frontier())
        with pytest.raises(TraceDivergence):
            sched.pick(None, 0.0, self._frontier())


# ---------------------------------------------------------------------------
# explorer mechanics, via the regression scenarios (small + deterministic)
# ---------------------------------------------------------------------------
class TestExplorer:
    def test_depth_zero_is_exactly_the_default_run(self):
        report = explore(
            make_scenario("regression-unpark-collision"), Budget(divergences=0)
        )
        assert report.runs == 1
        assert report.violations == 0
        assert report.exhausted

    def test_sleep_sets_prune_commuting_swaps(self):
        report = explore(
            make_scenario("regression-stale-wake"), Budget(divergences=2)
        )
        assert report.exhausted
        assert report.pruned > 0
        assert 0.0 < report.pruning_ratio < 1.0

    def test_max_runs_truncates_and_reports_it(self):
        report = explore(
            make_scenario("pmp-single", {"crashes": 0, "revokes": 0}),
            Budget(divergences=2, max_runs=5),
        )
        assert report.runs == 5
        assert not report.exhausted

    def test_stop_on_first_halts_the_search(self):
        report = explore(
            make_scenario(
                "regression-unpark-collision", {"bug": "unpark-token-collision"}
            ),
            Budget(divergences=2),
            stop_on_first=True,
        )
        assert report.violations == 1

    def test_injection_choice_points_appear_and_stay_within_budget(self):
        scenario = make_scenario("pmp-single", {"with_recovery": False})
        assert {spec.group for spec in scenario.injections} == {"crash", "revoke"}
        report = explore(scenario, Budget(divergences=1))
        assert report.exhausted
        assert report.violations == 0
        # every injection spec got its own schedule: injections are global,
        # so none can be sleep-set pruned
        injected = {
            cx for cx in report.counterexamples
        }  # none expected; branch count proves coverage instead
        assert not injected
        assert report.runs > len(scenario.injections)


# ---------------------------------------------------------------------------
# the flagship target: PMP single instance
# ---------------------------------------------------------------------------
class TestPmpExhaustion:
    def test_exhausts_schedule_space_with_zero_violations(self):
        # Depth 2, no injections: ~1k schedules (classic per-op paths).
        # The CI smoke job runs the full crash+revoke configuration
        # (~18k schedules) via the CLI.
        report = explore(
            make_scenario(
                "pmp-single",
                {"crashes": 0, "revokes": 0, "batch_chains": False},
            ),
            Budget(divergences=2),
        )
        assert report.exhausted
        assert report.violations == 0
        assert report.runs > 500
        assert report.pruned > 0
        summary = report.summary()
        assert "exhausted" in summary and "pruned" in summary

    def test_batched_chains_exhaust_with_zero_violations(self):
        # Doorbell batching fuses the prepare into one chain per memory,
        # shrinking the interleaving space — but the fused chains must
        # uphold the same agreement/validity/chosen-value oracles over
        # the whole (smaller) space.
        report = explore(
            make_scenario("pmp-single", {"crashes": 0, "revokes": 0}),
            Budget(divergences=2),
        )
        assert report.exhausted
        assert report.violations == 0
        assert report.runs > 200

    def test_crash_and_revoke_injections_preserve_agreement(self):
        report = explore(make_scenario("pmp-single"), Budget(divergences=1))
        assert report.exhausted
        assert report.violations == 0

    def test_crash_and_revoke_preserve_agreement_classic(self):
        report = explore(
            make_scenario("pmp-single", {"batch_chains": False}),
            Budget(divergences=1),
        )
        assert report.exhausted
        assert report.violations == 0


# ---------------------------------------------------------------------------
# counterexample traces
# ---------------------------------------------------------------------------
class TestTraces:
    def _find_counterexample(self):
        report = explore(
            make_scenario(
                "regression-unpark-collision", {"bug": "unpark-token-collision"}
            ),
            Budget(divergences=1),
            stop_on_first=True,
        )
        assert report.counterexamples
        return report.counterexamples[0]

    def test_roundtrip_and_replay(self, tmp_path):
        cx = self._find_counterexample()
        path = save_trace(cx, str(tmp_path / "cx.json"))
        data = load_trace(path)
        assert data["scenario"] == "regression-unpark-collision"
        assert data["divergences"] and data["errors"]
        result = replay_trace(path)
        assert result.matched
        assert result.reproduced

    def test_replay_on_fixed_kernel_does_not_reproduce(self, tmp_path):
        cx = self._find_counterexample()
        data = counterexample_to_dict(cx)
        data["params"]["bug"] = None  # same schedule, fixed kernel
        result = replay_trace(data)
        assert result.matched  # the schedule itself still exists
        assert not result.reproduced  # ...but the oracle passes

    def test_trace_is_json_serializable_with_foreign_payloads(self):
        cx = self._find_counterexample()
        text = json.dumps(counterexample_to_dict(cx))
        assert "unpark" in text

    def test_bad_format_rejected(self):
        with pytest.raises(ValueError):
            load_trace({"format": "something-else"})

    def test_unknown_scenario_rejected(self):
        with pytest.raises(KeyError):
            make_scenario("no-such-scenario")


# ---------------------------------------------------------------------------
# injection spec builders
# ---------------------------------------------------------------------------
class TestInjectBuilders:
    def test_crash_with_recovery_schedules_two_events(self):
        spec = crash(1, recover_after=5.0)
        assert spec.group == "crash"
        delays = [delay for delay, _ in spec.events]
        assert delays == [0.0, 5.0]

    def test_revoke_names_region_and_pid(self):
        spec = revoke(2, "pmp")
        assert spec.group == "revoke"
        assert "pmp" in spec.name and "p3" in spec.name
