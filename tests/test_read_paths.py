"""The read-path overhaul: one-sided quorum reads, permission-fenced
leader reads, session-consistent local reads.

Layer by layer:

* memory — the new one-sided ops (``ProbeOp``, floor-filtered
  ``ReadSnapshotOp``) enforce permissions exactly like their peers;
* consensus — the grant probe is live for the fence holder and dead the
  instant somebody else grabs the region;
* metrics — latency windows are bounded rings and the autoscaler's
  incremental p99 reads survive the bound;
* service — every read mode answers correctly, reports its achieved
  read/write mix, and the fault plane (revocation storms, crash+recover,
  elastic cutovers) forces fallbacks, never stale reads.
"""

import pytest

from repro import FaultScript
from repro.errors import ConfigurationError, StalenessViolation
from repro.mem.layout import MemoryLayout
from repro.mem.memory import Memory
from repro.mem.operations import (
    ChangePermissionOp,
    ProbeOp,
    ReadSnapshotOp,
    WriteOp,
)
from repro.mem.permissions import Permission, exclusive_grab_policy
from repro.mem.regions import RegionSpec
from repro.metrics.ledger import LatencyWindow, MetricsLedger
from repro.reconfig import ElasticConfig, ElasticKV, MoveLeader, SplitShard
from repro.shard import (
    READ_LEADER,
    READ_LOCAL,
    READ_QUORUM,
    ClosedLoopClient,
    OperationMix,
    ScriptedClient,
    ShardConfig,
    ShardedKV,
    ZipfianKeys,
)
from repro.shard.service import shard_region
from repro.types import MemoryId, OpStatus, ProcessId

P1, P2, P3 = ProcessId(0), ProcessId(1), ProcessId(2)


# ----------------------------------------------------------------------
# memory layer: the new one-sided ops
# ----------------------------------------------------------------------
class TestProbeOp:
    def _memory(self):
        spec = RegionSpec(
            "r",
            ("r",),
            Permission.exclusive_writer(0, range(3)),
            legal_change=exclusive_grab_policy(range(3)),
        )
        return Memory(MemoryId(0), MemoryLayout([spec]))

    def test_write_probe_tracks_the_grant(self):
        memory = self._memory()
        assert memory.apply(P1, ProbeOp("r", "write")).status is OpStatus.ACK
        assert memory.apply(P2, ProbeOp("r", "write")).status is OpStatus.NAK
        # p2 grabs the region: the fence moves with it, atomically
        grab = ChangePermissionOp("r", Permission.exclusive_writer(1, range(3)))
        assert memory.apply(P2, grab).status is OpStatus.ACK
        assert memory.apply(P1, ProbeOp("r", "write")).status is OpStatus.NAK
        assert memory.apply(P2, ProbeOp("r", "write")).status is OpStatus.ACK

    def test_read_probe_and_unknown_region(self):
        memory = self._memory()
        assert memory.apply(P3, ProbeOp("r", "read")).status is OpStatus.ACK
        assert memory.apply(P1, ProbeOp("nope", "write")).status is OpStatus.NAK

    def test_probe_touches_no_register(self):
        memory = self._memory()
        memory.apply(P1, ProbeOp("r", "write"))
        assert memory.registers == {}

    def test_access_validated_at_construction(self):
        with pytest.raises(ValueError):
            ProbeOp("r", "execute")


class TestReadSnapshotOp:
    def _memory(self):
        spec = RegionSpec("r", ("r",), Permission.open(range(3)))
        memory = Memory(MemoryId(0), MemoryLayout([spec]))
        for slot in range(5):
            memory.apply(P1, WriteOp("r", ("r", slot, 0), f"v{slot}"))
        memory.apply(P1, WriteOp("r", ("r", "wm", 0), 4))
        memory.apply(P1, WriteOp("r", ("r", -1, 0), "probe"))
        return memory

    def test_floor_filters_integer_indexed_entries(self):
        memory = self._memory()
        view = memory.apply(P2, ReadSnapshotOp("r", ("r",), floor=3)).value
        assert ("r", 3, 0) in view and ("r", 4, 0) in view
        assert ("r", 2, 0) not in view and ("r", -1, 0) not in view

    def test_named_registers_always_ride_along(self):
        memory = self._memory()
        view = memory.apply(P2, ReadSnapshotOp("r", ("r",), floor=100)).value
        assert view == {("r", "wm", 0): 4}

    def test_none_floor_is_a_plain_snapshot(self):
        memory = self._memory()
        view = memory.apply(P2, ReadSnapshotOp("r", ("r",))).value
        assert len(view) == 7

    def test_permissions_enforced(self):
        spec = RegionSpec("r", ("r",), Permission(readwrite=frozenset([P1])))
        memory = Memory(MemoryId(0), MemoryLayout([spec]))
        assert memory.apply(P2, ReadSnapshotOp("r", ("r",), 0)).status is OpStatus.NAK


# ----------------------------------------------------------------------
# metrics: bounded latency windows (the unbounded-growth fix)
# ----------------------------------------------------------------------
class TestLatencyWindow:
    def test_ring_is_bounded_but_total_keeps_counting(self):
        window = LatencyWindow(bound=8)
        for i in range(100):
            window.append(float(i), float(i))
        assert len(window) == 8
        assert window.total == 100
        assert window.latencies() == [float(i) for i in range(92, 100)]

    def test_since_addresses_by_global_index(self):
        window = LatencyWindow(bound=8)
        for i in range(20):
            window.append(float(i), float(i))
        # index 15 is retained (ring holds 12..19)
        assert window.since(15) == [15.0, 16.0, 17.0, 18.0, 19.0]
        # index 5 scrolled out: clipped to the retention horizon
        assert window.since(5) == window.latencies()
        assert window.since(20) == []

    def test_since_exactly_at_the_retention_horizon(self):
        window = LatencyWindow(bound=8)
        for i in range(20):
            window.append(float(i), float(i))
        # ring holds global indices 12..19; 12 is the oldest retained —
        # asking from exactly there must return the full ring, not clip
        assert window.since(12) == [float(i) for i in range(12, 20)]
        # one past the horizon drops exactly the oldest sample
        assert window.since(13) == [float(i) for i in range(13, 20)]

    def test_bound_of_one_keeps_only_the_newest(self):
        window = LatencyWindow(bound=1)
        for i in range(5):
            window.append(float(i), float(i))
        assert len(window) == 1
        assert window.total == 5
        assert window.latencies() == [4.0]
        assert window.since(0) == [4.0]  # clipped to the single survivor
        assert window.since(4) == [4.0]  # the horizon IS the newest
        assert window.since(5) == []

    def test_ledger_applies_the_bound(self):
        ledger = MetricsLedger(strict_safety=False, latency_window_bound=4)
        for i in range(10):
            ledger.record_shard_latency(0, float(i), float(i), kind="read")
        assert len(ledger.shard_latencies[0]) == 4
        assert ledger.shard_latencies[0].total == 10
        assert len(ledger.shard_read_latencies[0]) == 4

    def test_autoscaler_p99_survives_the_ring(self):
        from repro.reconfig.autoscale import Autoscaler, AutoscalerConfig

        ledger = MetricsLedger(strict_safety=False, latency_window_bound=16)
        policy = Autoscaler(AutoscalerConfig(interval=10.0))
        policy.window(0.0, ledger, [0])  # baseline tick
        for i in range(100):
            ledger.record_shard_latency(0, float(i), 5.0 if i < 99 else 90.0)
        rates = policy.window(100.0, ledger, [0])
        assert rates[0][1] == 90.0  # p99 of the fresh (retained) samples
        # second tick with no new samples: empty window, p99 resets
        assert policy.window(200.0, ledger, [0])[0][1] == 0.0


# ----------------------------------------------------------------------
# consensus: the grant probe
# ----------------------------------------------------------------------
class TestGrantProbe:
    def test_pmp_probe_follows_the_grant(self):
        from repro.consensus.protected_memory_paxos import (
            PmpNode,
            REGION,
            pmp_regions,
        )
        from repro.mem.layout import MemoryLayout
        from repro.sim.environment import ProcessEnv
        from repro.sim.kernel import Kernel, SimConfig

        kernel = Kernel(
            SimConfig(n_processes=3, n_memories=3),
            MemoryLayout(pmp_regions(3, initial_leader=0)),
        )
        leader = PmpNode(ProcessEnv(kernel, P1), "v")
        outcomes = {}

        def probe_task(name, node):
            held = yield from node.grant_probe(timeout=50.0)
            outcomes[name] = held

        kernel.spawn(0, "probe-held", probe_task("held", leader))
        kernel.run(until=100.0)
        assert outcomes["held"] is True

        # another process grabs exclusivity at every memory: the fence dies
        usurper_env = ProcessEnv(kernel, P2)

        def grab():
            for mid in usurper_env.memories:
                yield from usurper_env.change_permission(
                    mid, REGION, Permission.exclusive_writer(1, range(3))
                )

        kernel.spawn(1, "grab", grab())
        kernel.run(until=200.0)
        kernel.spawn(0, "probe-lost", probe_task("lost", leader))
        kernel.run(until=300.0)
        assert outcomes["lost"] is False


# ----------------------------------------------------------------------
# service: the three non-consensus read modes
# ----------------------------------------------------------------------
def _mixed_clients(n, n_ops, read_mode=None, think=0.0, base=0):
    return [
        ClosedLoopClient(
            client_id=base + i,
            n_ops=n_ops,
            keys=ZipfianKeys(64, prefix="rk"),
            mix=OperationMix(read_fraction=0.9),
            think_time=think,
            read_mode=read_mode,
        )
        for i in range(n)
    ]


class TestReadModes:
    @pytest.mark.parametrize("mode", [READ_LEADER, READ_QUORUM, READ_LOCAL])
    def test_mode_serves_all_reads_without_consensus(self, mode):
        service = ShardedKV(
            ShardConfig(
                n_shards=2, batch_max=4, seed=3, read_mode=mode,
                deadline=100_000.0,
            )
        )
        report = service.run_workload(_mixed_clients(9, 20))
        assert report.ok
        ledger = service.kernel.metrics
        assert ledger.total_reads_served(mode) == report.completed_reads
        assert ledger.staleness_violations == 0
        # reads never enter the log in this mode: committed commands are
        # exactly the writes
        assert report.committed_commands == report.completed_writes

    def test_read_your_writes_value_correctness(self):
        script = [("put", "alpha", "a1"), ("get", "alpha", None),
                  ("put", "alpha", "a2"), ("get", "alpha", None),
                  ("put", "beta", "b1"), ("get", "beta", None)]
        for mode in (READ_LEADER, READ_QUORUM, READ_LOCAL):
            service = ShardedKV(
                ShardConfig(n_shards=2, seed=7, read_mode=mode, deadline=50_000.0)
            )
            client = ScriptedClient(client_id=1, script=script)
            report = service.run_workload([client])
            assert report.ok
            # replay against the leader machine: final state is correct
            state = service.snapshot(
                service.partitioner.shard_for("alpha")
            )
            assert state["alpha"] == "a2"
            assert service.kernel.metrics.staleness_violations == 0

    def test_per_client_mode_override(self):
        service = ShardedKV(
            ShardConfig(n_shards=2, seed=5, read_mode=READ_LEADER,
                        deadline=100_000.0)
        )
        clients = _mixed_clients(3, 15) + _mixed_clients(
            3, 15, read_mode=READ_QUORUM, base=50
        )
        report = service.run_workload(clients)
        assert report.ok
        ledger = service.kernel.metrics
        assert ledger.total_reads_served(READ_LEADER) > 0
        assert ledger.total_reads_served(READ_QUORUM) > 0

    def test_read_mode_validation(self):
        with pytest.raises(ConfigurationError):
            ShardConfig(read_mode="psychic")
        with pytest.raises(ConfigurationError):
            ShardConfig(n_shards=2, read_mode=READ_QUORUM, bft_shards=(1,))

    def test_mode_override_on_disabled_read_plane_refuses_loudly(self):
        """A client asking for a non-consensus mode on a consensus-only
        service must error, not silently measure the wrong path."""
        service = ShardedKV(ShardConfig(n_shards=2, seed=3))
        client = ScriptedClient(
            client_id=1, script=[("get", "k", None)], read_mode=READ_QUORUM
        )
        with pytest.raises(ConfigurationError):
            service.run_workload([client])

    def test_overlapping_open_loop_reads_do_not_trip_the_wire(self):
        """An open-loop client shares one session across in-flight
        requests; replies completing out of watermark order are legal
        concurrency (the floor is captured at issue time), not staleness."""
        from repro.shard import OpenLoopClient

        for mode in (READ_LEADER, READ_QUORUM):
            service = ShardedKV(
                ShardConfig(n_shards=2, seed=23, read_mode=mode,
                            deadline=200_000.0)
            )
            clients = [
                OpenLoopClient(
                    client_id=i, n_ops=25, keys=ZipfianKeys(32, prefix="ok"),
                    mix=OperationMix(read_fraction=0.9), interarrival=0.5,
                )
                for i in range(4)
            ]
            report = service.run_workload(clients)
            assert report.ok
            assert service.kernel.metrics.staleness_violations == 0

    def test_default_consensus_mode_spawns_no_read_plane(self):
        service = ShardedKV(ShardConfig(n_shards=2, seed=1))
        names = {task.name for task in service.kernel.tasks}
        assert not any("rd-" in name for name in names)
        assert service._read_queues == {}


class TestAchievedMix:
    def test_report_counts_served_mix_per_shard(self):
        service = ShardedKV(
            ShardConfig(n_shards=2, seed=9, read_mode=READ_QUORUM,
                        deadline=100_000.0)
        )
        # a deterministic script: 6 puts, 9 gets => achieved 0.6 read mix
        ops = []
        for i in range(6):
            ops.append(("put", f"mk{i}", f"v{i}"))
        for i in range(9):
            ops.append(("get", f"mk{i % 6}", None))
        report = service.run_workload([ScriptedClient(client_id=2, script=ops)])
        assert report.ok
        assert report.completed_reads == 9
        assert report.completed_writes == 6
        assert report.achieved_read_fraction == pytest.approx(0.6)
        per_shard = sum(s.reads for s in report.shards.values())
        assert per_shard == 9
        # the per-shard table carries the achieved mix column
        assert "rmix" in report.per_shard_table()


# ----------------------------------------------------------------------
# fault plane composition: storms, crashes, cutovers
# ----------------------------------------------------------------------
class TestFenceUnderFaults:
    def test_permission_storm_forces_fallback_never_stale(self):
        script = FaultScript()
        script.at(30.0).permission_storm(
            pid=2, region=shard_region(0), shots=6, spacing=4.0
        )
        service = ShardedKV(
            ShardConfig(
                n_shards=2, n_processes=3, batch_max=4, seed=5,
                read_mode=READ_LEADER, retry_timeout=30.0, deadline=300_000.0,
                faults=script,
            )
        )
        report = service.run_workload(_mixed_clients(12, 40))
        assert report.ok
        ledger = service.kernel.metrics
        # the storm revoked the leader's grant mid-run: some fenced reads
        # had to refuse and fall back to consensus...
        assert ledger.read_fallbacks[(0, READ_LEADER)] > 0
        # ...and not one read was served stale
        assert ledger.staleness_violations == 0
        assert ledger.faults_of("perm_change")

    def test_leader_crash_recovery_with_local_reads(self):
        script = FaultScript()
        script.at(80.0).crash_process(0).recover(at=160.0)
        service = ShardedKV(
            ShardConfig(
                n_shards=2, n_processes=3, batch_max=4, seed=13,
                read_mode=READ_LOCAL, retry_timeout=25.0, deadline=300_000.0,
                faults=script,
            )
        )
        # clients pinned away from the crash victim so they survive it
        clients = [
            ClosedLoopClient(
                client_id=i, n_ops=30, keys=ZipfianKeys(48, prefix="ck"),
                mix=OperationMix(read_fraction=0.8), pid=1 + (i % 2),
            )
            for i in range(6)
        ]
        report = service.run_workload(clients)
        assert report.ok
        assert service.kernel.metrics.staleness_violations == 0

    def test_quorum_reads_survive_a_partitioned_leader(self):
        """A minority-side client can still read one-sided: memory ops
        cross the partition (memories are not processes)."""
        script = FaultScript()
        script.at(50.0).partition({0, 1}, {2}).heal(at=250.0)
        service = ShardedKV(
            ShardConfig(
                n_shards=1, n_processes=3, batch_max=4, seed=21,
                read_mode=READ_QUORUM, retry_timeout=30.0, deadline=300_000.0,
                faults=script,
            )
        )
        # seed a value before the partition, then have the minority read it
        seeder = ScriptedClient(
            client_id=1, script=[("put", f"pk{i}", f"v{i}") for i in range(8)],
            pid=0,
        )
        minority_reader = ScriptedClient(
            client_id=2,
            script=[("get", f"pk{i % 8}", None) for i in range(20)],
            pid=2,
            read_mode=READ_QUORUM,
        )
        report = service.run_workload([seeder, minority_reader])
        assert report.ok
        ledger = service.kernel.metrics
        assert ledger.total_reads_served(READ_QUORUM) == 20
        assert ledger.staleness_violations == 0


class TestElasticCompose:
    def test_deposed_leader_naks_local_reads_via_the_fence(self):
        """After a MoveLeader cutover the old leader's grant probe must
        fail at the memories — a deposed leader can never serve a fenced
        read again."""
        service = ElasticKV(
            ElasticConfig(
                n_shards=2, n_processes=3, batch_max=4, seed=31,
                read_mode=READ_LEADER, retry_timeout=25.0, deadline=200_000.0,
            )
        )
        old_leader = service.leader_of(0)
        new_leader = (old_leader + 1) % 3
        service.schedule_reconfig(60.0, MoveLeader(0, new_leader))
        report = service.run_workload(_mixed_clients(6, 25, think=2.0))
        assert report.ok
        assert service.leader_of(0) == new_leader
        outcomes = {}

        def probe(name, log):
            held = yield from log.fence_probe(timeout=50.0)
            outcomes[name] = held

        kernel = service.kernel
        kernel.spawn(old_leader, "probe-old", probe("old", service.logs[(old_leader, 0)]))
        kernel.spawn(new_leader, "probe-new", probe("new", service.logs[(new_leader, 0)]))
        kernel.run(until=kernel.now + 200.0)
        assert outcomes == {"old": False, "new": True}
        assert kernel.metrics.staleness_violations == 0

    def test_acceptance_storm_partition_and_split(self):
        """The E18 chaos composition: a permission storm, a partition +
        heal, and a live 2→3 split under a read-mostly mixed-mode
        workload — every request completes, zero staleness violations."""
        script = FaultScript()
        script.at(100.0).permission_storm(
            pid=2, region=shard_region(0), shots=5, spacing=5.0
        )
        script.at(150.0).partition({0, 1}, {2}).heal(at=400.0)
        service = ElasticKV(
            ElasticConfig(
                n_shards=2, n_processes=3, batch_max=4, seed=11,
                read_mode=READ_LEADER, retry_timeout=30.0, deadline=400_000.0,
                faults=script,
            )
        )
        service.schedule_reconfig(220.0, SplitShard())
        seeds = [
            ScriptedClient(
                client_id=100 + w,
                script=[("put", f"zk{i}", f"s{i}") for i in range(w, 48, 3)],
            )
            for w in range(3)
        ]
        clients = (
            _mixed_clients(4, 30, think=2.0)
            + _mixed_clients(3, 30, read_mode=READ_QUORUM, think=2.0, base=40)
        )
        report = service.run_workload(seeds + clients)
        assert report.ok, report.summary()
        assert service.shards == [0, 1, 2]  # the split activated
        ledger = service.kernel.metrics
        assert ledger.staleness_violations == 0
        assert ledger.total_reads_served() > 0
        # the storm forced the fenced path to degrade at least once
        assert ledger.total_read_fallbacks() > 0


class TestStalenessTripwire:
    def test_stale_read_raises_under_strict_safety(self):
        ledger = MetricsLedger(strict_safety=True)
        with pytest.raises(StalenessViolation):
            ledger.record_stale_read("synthetic")
        assert ledger.staleness_violations == 1

    def test_recorded_without_raising_when_lenient(self):
        ledger = MetricsLedger(strict_safety=False)
        ledger.record_stale_read("synthetic")
        assert ledger.stale_reads == ["synthetic"]
