"""Kernel behaviour: tasks, messaging, timers, crashes, determinism."""

import pytest

from repro.errors import SimulationError
from repro.sim.kernel import Kernel, SimConfig
from repro.types import ProcessId

from tests.conftest import env_of, make_kernel, run_single


class TestTaskLifecycle:
    def test_task_runs_and_returns(self, kernel):
        def gen():
            yield env_of(kernel, 0).sleep(1.0)
            return "done"

        task = run_single(kernel, 0, gen())
        assert task.done
        assert task.result == "done"

    def test_sleep_advances_virtual_time(self, kernel):
        env = env_of(kernel, 0)

        def gen():
            yield env.sleep(7.5)
            return env.now

        task = run_single(kernel, 0, gen())
        assert task.result == 7.5

    def test_spawn_child_task(self, kernel):
        env = env_of(kernel, 0)
        seen = []

        def child():
            yield env.sleep(1.0)
            seen.append("child")

        def parent():
            handle = yield env.spawn("child", child())
            assert handle.name == "child"
            yield env.sleep(5.0)
            seen.append("parent")

        run_single(kernel, 0, parent())
        assert seen == ["child", "parent"]

    def test_runaway_loop_detected(self):
        kernel = make_kernel(max_inline_steps=100)
        env = env_of(kernel, 0)

        def spam():
            while True:
                yield env.send(1, "x")

        kernel.spawn(0, "spam", spam())
        with pytest.raises(SimulationError):
            kernel.run(until=10)


class TestMessaging:
    def test_send_recv_roundtrip(self, kernel):
        env0, env1 = env_of(kernel, 0), env_of(kernel, 1)

        def sender():
            yield env0.send(1, {"k": 1}, topic="t")

        def receiver():
            msg = yield from env1.recv(topic="t")
            return (msg.src, msg.payload)

        kernel.spawn(0, "s", sender())
        task = run_single(kernel, 1, receiver())
        assert task.result == (ProcessId(0), {"k": 1})

    def test_message_takes_one_delay(self, kernel):
        env0, env1 = env_of(kernel, 0), env_of(kernel, 1)

        def sender():
            yield env0.send(1, "ping", topic="t")

        def receiver():
            yield from env1.recv(topic="t")
            return env1.now

        kernel.spawn(0, "s", sender())
        task = run_single(kernel, 1, receiver())
        assert task.result == 1.0

    def test_recv_timeout_returns_none(self, kernel):
        env = env_of(kernel, 0)

        def receiver():
            msg = yield from env.recv(topic="never", timeout=5.0)
            return (msg, env.now)

        task = run_single(kernel, 0, receiver())
        assert task.result == (None, 5.0)

    def test_topic_isolation(self, kernel):
        env0, env1 = env_of(kernel, 0), env_of(kernel, 1)

        def sender():
            yield env0.send(1, "wrong", topic="a")
            yield env0.send(1, "right", topic="b")

        def receiver():
            msg = yield from env1.recv(topic="b")
            return msg.payload

        kernel.spawn(0, "s", sender())
        task = run_single(kernel, 1, receiver())
        assert task.result == "right"

    def test_match_predicate(self, kernel):
        env0, env1 = env_of(kernel, 0), env_of(kernel, 1)

        def sender():
            for i in range(5):
                yield env0.send(1, i, topic="t")

        def receiver():
            msg = yield from env1.recv(topic="t", match=lambda e: e.payload == 3)
            return msg.payload

        kernel.spawn(0, "s", sender())
        task = run_single(kernel, 1, receiver())
        assert task.result == 3

    def test_broadcast_reaches_everyone(self):
        kernel = make_kernel(n_processes=4)
        envs = [env_of(kernel, p) for p in range(4)]
        received = []

        def sender():
            yield from envs[0].broadcast("hello", topic="t", include_self=False)

        def receiver(p):
            msg = yield from envs[p].recv(topic="t")
            received.append(p)

        kernel.spawn(0, "s", sender())
        for p in range(1, 4):
            kernel.spawn(p, f"r{p}", receiver(p))
        kernel.run(until=100)
        assert sorted(received) == [1, 2, 3]

    def test_sender_identity_is_stamped_by_kernel(self, kernel):
        # Link integrity: receivers see the true sender, not a claimed one.
        env0, env1 = env_of(kernel, 0), env_of(kernel, 1)

        def sender():
            yield env0.send(1, {"claims_to_be": 2}, topic="t")

        def receiver():
            msg = yield from env1.recv(topic="t")
            return msg.src

        kernel.spawn(0, "s", sender())
        task = run_single(kernel, 1, receiver())
        assert task.result == ProcessId(0)


class TestCrashes:
    def test_crashed_process_stops_running(self, kernel):
        env = env_of(kernel, 0)
        progress = []

        def gen():
            while True:
                yield env.sleep(1.0)
                progress.append(env.now)

        kernel.spawn(0, "p", gen())
        kernel.call_at(3.5, lambda: kernel.crash_process(ProcessId(0)))
        kernel.run(until=100)
        assert all(t <= 3.5 for t in progress)
        assert len(progress) == 3

    def test_message_to_crashed_process_is_dropped(self, kernel):
        env0 = env_of(kernel, 0)
        kernel.crash_process(ProcessId(1))

        def sender():
            yield env0.send(1, "x", topic="t")

        run_single(kernel, 0, sender())
        assert kernel.network.pending_count(ProcessId(1)) == 0

    def test_crash_is_idempotent(self, kernel):
        kernel.crash_process(ProcessId(0))
        kernel.crash_process(ProcessId(0))
        assert ProcessId(0) in kernel.crashed_processes

    def test_correct_processes_listing(self, kernel):
        kernel.crash_process(ProcessId(1))
        kernel.mark_byzantine(ProcessId(2))
        assert kernel.correct_processes() == [ProcessId(0)]


class TestDeterminism:
    def _trace_run(self, seed):
        kernel = make_kernel(seed=seed)
        envs = [env_of(kernel, p) for p in range(3)]
        log = []

        def chatter(p):
            for i in range(5):
                yield envs[p].send((p + 1) % 3, (p, i), topic="t")
                msg = yield from envs[p].recv(topic="t", timeout=10.0)
                log.append((envs[p].now, p, msg.payload if msg else None))
                yield envs[p].sleep(envs[p].rng.random())

        for p in range(3):
            kernel.spawn(p, f"c{p}", chatter(p))
        kernel.run(until=1000)
        return log

    def test_same_seed_same_schedule(self):
        assert self._trace_run(42) == self._trace_run(42)

    def test_different_seed_different_schedule(self):
        # Seeds drive the jitter in rng.random() sleeps.
        assert self._trace_run(1) != self._trace_run(2)


class TestRunControl:
    def test_run_until_stops_at_deadline(self, kernel):
        env = env_of(kernel, 0)

        def gen():
            while True:
                yield env.sleep(1.0)

        kernel.spawn(0, "p", gen())
        kernel.run(until=10)
        assert kernel.now <= 10

    def test_stop_when_predicate(self, kernel):
        env = env_of(kernel, 0)
        hits = []

        def gen():
            while True:
                yield env.sleep(1.0)
                hits.append(env.now)

        kernel.spawn(0, "p", gen())
        kernel.run(until=100, stop_when=lambda: len(hits) >= 3)
        assert len(hits) == 3

    def test_run_until_decided(self, kernel):
        env = env_of(kernel, 0)

        def gen():
            yield env.sleep(2.0)
            env.decide("v")

        kernel.spawn(0, "p", gen())
        done = kernel.run_until_decided({ProcessId(0)}, deadline=100)
        assert done
        assert kernel.metrics.decisions[ProcessId(0)].value == "v"
