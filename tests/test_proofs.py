"""Unanimity proofs (Cheap Quorum / Preferential Paxos certificates)."""

import pytest

from repro.crypto.proofs import UnanimityProof, assemble_proof, verify_proof
from repro.crypto.signatures import SignatureAuthority
from repro.types import ProcessId

N = 3


@pytest.fixture
def authority():
    return SignatureAuthority(seed=3)


def _copies(authority, value, signers=range(N)):
    return tuple(
        authority.sign(authority.key_for(ProcessId(p)), value) for p in signers
    )


class TestVerifyProof:
    def test_valid_proof_roundtrip(self, authority):
        value = "decided"
        copies = _copies(authority, value)
        signed = assemble_proof(
            authority, authority.key_for(ProcessId(1)), value, copies
        )
        proof = verify_proof(authority, signed, N)
        assert proof is not None
        assert proof.value == value
        assert proof.assembler == ProcessId(1)

    def test_too_few_copies_rejected(self, authority):
        copies = _copies(authority, "v", signers=range(N - 1))
        signed = assemble_proof(authority, authority.key_for(ProcessId(0)), "v", copies)
        assert verify_proof(authority, signed, N) is None

    def test_duplicate_signers_rejected(self, authority):
        one = authority.sign(authority.key_for(ProcessId(0)), "v")
        signed = assemble_proof(
            authority, authority.key_for(ProcessId(0)), "v", (one, one, one)
        )
        assert verify_proof(authority, signed, N) is None

    def test_mixed_values_rejected(self, authority):
        copies = list(_copies(authority, "v", signers=range(N - 1)))
        copies.append(authority.sign(authority.key_for(ProcessId(2)), "OTHER"))
        signed = assemble_proof(
            authority, authority.key_for(ProcessId(0)), "v", tuple(copies)
        )
        assert verify_proof(authority, signed, N) is None

    def test_bad_copy_signature_rejected(self, authority):
        from repro.crypto.signatures import Signature, Signed

        copies = list(_copies(authority, "v", signers=range(N - 1)))
        copies.append(Signed("v", Signature(ProcessId(2), b"garbage")))
        signed = assemble_proof(
            authority, authority.key_for(ProcessId(0)), "v", tuple(copies)
        )
        assert verify_proof(authority, signed, N) is None

    def test_bad_outer_signature_rejected(self, authority):
        from repro.crypto.signatures import Signed

        copies = _copies(authority, "v")
        good = assemble_proof(authority, authority.key_for(ProcessId(0)), "v", copies)
        tampered = Signed(
            UnanimityProof("OTHER", copies, ProcessId(0)), good.signature
        )
        assert verify_proof(authority, tampered, N) is None

    def test_non_proof_payload_rejected(self, authority):
        signed = authority.sign(authority.key_for(ProcessId(0)), "not-a-proof")
        assert verify_proof(authority, signed, N) is None
        assert verify_proof(authority, None, N) is None

    def test_no_two_proofs_for_different_values(self, authority):
        """The pigeonhole behind Lemma 4.8: correct processes sign one value,
        so with every process required, two differently-valued proofs cannot
        both verify unless some signer signed both — here we simply confirm
        a proof missing any one process's copy fails."""
        copies_v = _copies(authority, "v", signers=[0, 1])
        signed_v = assemble_proof(
            authority, authority.key_for(ProcessId(0)), "v", copies_v
        )
        assert verify_proof(authority, signed_v, N) is None
