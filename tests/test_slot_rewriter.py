"""The slot-rewrite attack: Algorithm 2's witnessing step under fire.

A Byzantine broadcaster publishes one valid value, lets an early reader
deliver it, then rewrites its own slot with a different signed value.  The
witnessing step (copy before deliver) must make late readers either deliver
the *same* first value or refuse to deliver — never the second value, or
two correct processes would disagree on (sender, k).
"""

import pytest

from repro.broadcast.nonequivocating import NonEquivocatingBroadcast, neb_regions
from repro.failures.byzantine import SlotRewriter
from repro.types import ProcessId

from tests.conftest import env_of, make_kernel


def _session(rewrite_after=30.0, late_start=60.0):
    kernel = make_kernel(3, 3, regions=neb_regions(range(3)))
    kernel.mark_byzantine(ProcessId(0))

    early_env = env_of(kernel, 1)
    early = NonEquivocatingBroadcast(early_env)
    kernel.spawn(1, "neb-early", early.delivery_daemon())

    late_env = env_of(kernel, 2)
    late = NonEquivocatingBroadcast(late_env)

    def delayed_daemon():
        yield late_env.sleep(late_start)  # comes online after the rewrite
        yield from late.delivery_daemon()

    kernel.spawn(2, "neb-late", delayed_daemon())

    strategy = SlotRewriter("FIRST", "SECOND", rewrite_after=rewrite_after)
    for name, gen in strategy.tasks(env_of(kernel, 0), None):
        kernel.spawn(0, name, gen)
    kernel.run(until=1500)
    return early, late


class TestSlotRewriteAttack:
    def test_early_reader_delivers_first_value(self):
        early, late = _session()
        assert [d.payload for d in early.delivered] == ["FIRST"]

    def test_late_reader_never_delivers_second_value(self):
        early, late = _session()
        late_payloads = [d.payload for d in late.delivered]
        assert "SECOND" not in late_payloads

    def test_no_conflicting_deliveries(self):
        early, late = _session()
        payloads = {d.payload for d in early.delivered} | {
            d.payload for d in late.delivered
        }
        assert len(payloads) <= 1  # Property 2, the whole point

    def test_late_reader_convicts_the_rewriter(self):
        early, late = _session()
        # The late reader saw the early reader's witness copy of FIRST next
        # to the rewritten SECOND: equivocation detected.
        if not late.delivered:
            assert ProcessId(0) in late.convicted

    def test_immediate_rewrite_before_any_reader(self):
        # If the rewrite lands before anyone read the slot, only the second
        # value is ever visible — and then *it* may be delivered instead;
        # either way, never both.
        early, late = _session(rewrite_after=0.0, late_start=5.0)
        payloads = {d.payload for d in early.delivered} | {
            d.payload for d in late.delivered
        }
        assert len(payloads) <= 1
