"""The regression corpus: seeded kernel bugs must be rediscovered by the
explorer (with a replayable counterexample), and the fixed kernel must
explore clean — both directions, both bugs."""

from __future__ import annotations

import pytest

from repro.check import Budget, explore, make_scenario, replay_trace, save_trace
from repro.check.regressions import known_bugs, seeded_bug
from repro.check.trace import counterexample_to_dict
from repro.net.network import Network
from repro.sim.kernel import Kernel

CORPUS = {
    "unpark-token-collision": "regression-unpark-collision",
    "stale-wake-token-check": "regression-stale-wake",
}


class TestSeededBugFlag:
    def test_corpus_covers_every_known_bug(self):
        assert sorted(CORPUS) == known_bugs()

    def test_patch_is_applied_and_restored(self):
        original = Network.__dict__["unpark"]
        with seeded_bug("unpark-token-collision"):
            assert Network.__dict__["unpark"] is not original
        assert Network.__dict__["unpark"] is original

    def test_patch_restored_on_error(self):
        original = Kernel.__dict__["_ev_wake"]
        with pytest.raises(RuntimeError):
            with seeded_bug("stale-wake-token-check"):
                raise RuntimeError("boom")
        assert Kernel.__dict__["_ev_wake"] is original

    def test_none_is_a_noop(self):
        with seeded_bug(None):
            pass

    def test_unknown_bug_rejected(self):
        with pytest.raises(KeyError):
            with seeded_bug("not-a-bug"):
                pass


@pytest.mark.parametrize("bug", sorted(CORPUS))
class TestCorpus:
    def test_explorer_finds_the_seeded_bug(self, bug, tmp_path):
        report = explore(
            make_scenario(CORPUS[bug], {"bug": bug}),
            Budget(divergences=2, max_runs=500),
            stop_on_first=True,
        )
        assert report.violations >= 1, f"explorer missed seeded bug {bug}"
        cx = report.counterexamples[0]
        assert cx.plan, "a violating schedule must diverge from the default"
        # ...and the counterexample trace replays deterministically
        path = save_trace(cx, str(tmp_path / f"{bug}.json"))
        result = replay_trace(path)
        assert result.matched, result.mismatches
        assert result.reproduced

    def test_default_schedule_is_benign_even_with_the_bug(self, bug):
        # the corpus point: these are schedule bugs — depth 0 (the exact
        # default order) passes even on the buggy kernel
        report = explore(
            make_scenario(CORPUS[bug], {"bug": bug}), Budget(divergences=0)
        )
        assert report.runs == 1
        assert report.violations == 0

    def test_fixed_kernel_explores_clean(self, bug):
        report = explore(
            make_scenario(CORPUS[bug]), Budget(divergences=2, max_runs=500)
        )
        assert report.exhausted
        assert report.violations == 0

    def test_counterexample_stops_reproducing_once_fixed(self, bug):
        report = explore(
            make_scenario(CORPUS[bug], {"bug": bug}),
            Budget(divergences=2, max_runs=500),
            stop_on_first=True,
        )
        data = counterexample_to_dict(report.counterexamples[0])
        data["params"]["bug"] = None
        result = replay_trace(data)
        assert result.matched
        assert not result.reproduced
