"""Property-based tests for the replicated-register layer."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.registers.swmr import ReplicatedRegister, _merge_reads, swmr_regions
from repro.types import BOTTOM, MemoryId, is_bottom

from tests.conftest import env_of, make_kernel

_SETTINGS = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


class TestMergeRule:
    """The paper's read rule: exactly one distinct non-⊥ value, else ⊥."""

    @given(st.lists(st.integers(0, 3) | st.none(), max_size=8))
    def test_merge_never_invents_values(self, raw):
        values = [BOTTOM if v is None else v for v in raw]
        merged = _merge_reads(values)
        if not is_bottom(merged):
            assert merged in values

    @given(st.integers(), st.integers(1, 8))
    def test_unanimous_value_wins(self, value, copies):
        assert _merge_reads([value] * copies) == value

    @given(st.integers(1, 8))
    def test_all_bottom_is_bottom(self, copies):
        assert is_bottom(_merge_reads([BOTTOM] * copies))

    @given(st.integers(), st.integers())
    def test_two_distinct_values_merge_to_bottom(self, a, b):
        if a != b:
            assert is_bottom(_merge_reads([a, b]))

    @given(st.integers(), st.integers(1, 4), st.integers(0, 4))
    def test_bottoms_do_not_mask_a_unique_value(self, value, copies, bottoms):
        values = [value] * copies + [BOTTOM] * bottoms
        assert _merge_reads(values) == value

    def test_merge_handles_unhashable_values(self):
        # Register values are arbitrary Python objects, including dicts.
        assert _merge_reads([{"a": 1}, {"a": 1}]) == {"a": 1}
        assert is_bottom(_merge_reads([{"a": 1}, {"a": 2}]))


class TestWriteReadProperties:
    @_SETTINGS
    @given(
        writes=st.lists(st.integers(0, 100), min_size=1, max_size=6),
        crash=st.integers(0, 2),
    )
    def test_read_returns_last_write_despite_one_crash(self, writes, crash):
        kernel = make_kernel(1, 3, regions=swmr_regions("s", [0], [0]))
        kernel.crash_memory(MemoryId(crash))
        env = env_of(kernel, 0)
        register = ReplicatedRegister("s:0", ("s", 0, "k"))

        def gen():
            for value in writes:
                yield from register.write(env, value)
            result = yield from register.read(env)
            return result

        task = kernel.spawn(0, "rw", gen())
        kernel.run(until=10_000)
        assert task.result == writes[-1]

    @_SETTINGS
    @given(seed=st.integers(0, 1000))
    def test_sequential_writers_reader_sees_final(self, seed):
        from repro.sim.latency import JitteredSynchrony

        kernel = make_kernel(
            2, 3, regions=swmr_regions("s", [0], [0, 1]),
            latency=JitteredSynchrony(0.3), seed=seed,
        )
        env0, env1 = env_of(kernel, 0), env_of(kernel, 1)
        register = ReplicatedRegister("s:0", ("s", 0, "k"))

        def writer():
            for i in range(3):
                yield from register.write(env0, i)

        def reader():
            yield env1.sleep(50.0)  # strictly after all writes
            result = yield from register.read(env1)
            return result

        kernel.spawn(0, "w", writer())
        task = kernel.spawn(1, "r", reader())
        kernel.run(until=10_000)
        assert task.result == 2
