"""Unit tests for core value types."""

import pickle

from repro.types import (
    BOTTOM,
    OpResult,
    OpStatus,
    _BottomType,
    is_bottom,
    memory_name,
    process_name,
)


class TestBottom:
    def test_singleton(self):
        assert _BottomType() is BOTTOM

    def test_is_bottom(self):
        assert is_bottom(BOTTOM)
        assert not is_bottom(None)
        assert not is_bottom(0)
        assert not is_bottom("")

    def test_falsy(self):
        assert not BOTTOM

    def test_repr(self):
        assert repr(BOTTOM) == "⊥"

    def test_distinct_from_none(self):
        # Protocol payloads may carry None; ⊥ must not collide with it.
        assert BOTTOM is not None
        assert not is_bottom(None)

    def test_pickle_roundtrip_preserves_identity(self):
        assert pickle.loads(pickle.dumps(BOTTOM)) is BOTTOM


class TestOpStatus:
    def test_ack_truthy(self):
        assert OpStatus.ACK
        assert bool(OpStatus.ACK) is True

    def test_nak_falsy(self):
        assert not OpStatus.NAK

    def test_values(self):
        assert OpStatus.ACK.value == "ack"
        assert OpStatus.NAK.value == "nak"


class TestOpResult:
    def test_ok_property(self):
        assert OpResult(OpStatus.ACK).ok
        assert not OpResult(OpStatus.NAK).ok

    def test_carries_value(self):
        result = OpResult(OpStatus.ACK, value=42)
        assert result.value == 42

    def test_frozen(self):
        result = OpResult(OpStatus.ACK)
        try:
            result.value = 1
            assert False, "OpResult should be frozen"
        except AttributeError:
            pass


class TestNames:
    def test_process_name_is_one_based(self):
        assert process_name(0) == "p1"
        assert process_name(4) == "p5"

    def test_memory_name_is_one_based(self):
        assert memory_name(0) == "mu1"
        assert memory_name(2) == "mu3"
