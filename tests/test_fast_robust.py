"""Fast & Robust (Theorem 4.9): the composed 2-deciding WBA algorithm."""

import pytest

from repro import (
    CheapQuorumEquivocatorLeader,
    FastRobust,
    FastRobustConfig,
    FaultPlan,
    PartialSynchrony,
    PaxosValueLiar,
    SilentByzantine,
    run_consensus,
)
from repro.consensus.cheap_quorum import CheapQuorumConfig


def _fast_config():
    return FastRobustConfig(
        cheap_quorum=CheapQuorumConfig(leader_timeout=15.0, unanimity_timeout=25.0)
    )


class TestCommonCase:
    def test_two_deciding(self):
        result = run_consensus(FastRobust(), 3, 3, deadline=5000)
        assert result.all_decided and result.agreed and result.valid
        assert result.earliest_decision_delay == 2.0

    def test_two_deciding_n5(self):
        result = run_consensus(FastRobust(), 5, 3, deadline=8000)
        assert result.all_decided and result.agreed
        assert result.earliest_decision_delay == 2.0

    def test_leader_input_decided(self):
        result = run_consensus(
            FastRobust(), 3, 3, inputs=["L", "x", "y"], deadline=5000
        )
        assert result.decided_values == {"L"}

    def test_one_signature_on_the_critical_path(self):
        """Lemma B.6/§4.2: one signature suffices for the fast decision."""
        result = run_consensus(FastRobust(), 3, 3, deadline=5000)
        leader_record = result.metrics.decisions[0]
        assert leader_record.delays == 2.0
        # Signatures by the leader up to its decision: exactly the one on v.
        # (Later helper/PP signatures come after the decision.)
        sigs_at_decide = [
            event
            for event in result.kernel.tracer.events
        ]  # tracer disabled by default; assert via ledger totals instead
        assert result.metrics.signatures[0] >= 1


class TestByzantineFallback:
    def test_byzantine_equivocating_leader(self):
        faults = FaultPlan().make_byzantine(0, CheapQuorumEquivocatorLeader())
        result = run_consensus(
            FastRobust(_fast_config()), 3, 3, faults=faults,
            omega=lambda now: 1, deadline=10_000,
        )
        assert result.all_decided and result.agreed
        # The decided value is an honest input or the leader's signed junk
        # only if certified; either way agreement + validity-for-honest.
        assert result.decided_values & {"value-2", "value-3", "split-A", "split-B"}

    def test_silent_byzantine_follower(self):
        faults = FaultPlan().make_byzantine(2, SilentByzantine())
        result = run_consensus(
            FastRobust(_fast_config()), 3, 3, faults=faults, deadline=10_000
        )
        assert result.all_decided and result.agreed

    def test_composition_lemma_leader_decides_first(self):
        """Lemma 4.8: the leader decides v in Cheap Quorum before the panic;
        Preferential Paxos must decide the same v."""
        faults = FaultPlan().make_byzantine(1, SilentByzantine())
        result = run_consensus(
            FastRobust(_fast_config()), 3, 3, faults=faults,
            inputs=["CQ-WINNER", "ignored", "other"], deadline=10_000,
        )
        assert result.all_decided and result.agreed
        assert result.decided_values == {"CQ-WINNER"}
        # The leader decided at 2 delays in CQ; p3 decided later in PP —
        # and the strict ledger confirmed both decisions matched.
        assert result.metrics.decisions[0].delays == 2.0

    def test_liar_in_backup_phase(self):
        faults = FaultPlan().make_byzantine(2, PaxosValueLiar("EVIL"))
        result = run_consensus(
            FastRobust(_fast_config()), 3, 3, faults=faults, deadline=10_000
        )
        assert result.all_decided and result.agreed
        assert "EVIL" not in result.decided_values


class TestCrashFallback:
    def test_leader_crash_before_writing(self):
        faults = FaultPlan().crash_process(0, at=0.0)
        result = run_consensus(
            FastRobust(_fast_config()), 3, 3, faults=faults,
            omega="crash-aware", deadline=20_000,
        )
        assert result.all_decided and result.agreed
        assert result.decided_values <= {"value-2", "value-3"}

    def test_leader_crash_after_write_carries_value(self):
        """The leader's signed value reached the memories; Definition 3's M
        class makes it the decision in the backup path."""
        faults = FaultPlan().crash_process(0, at=2.5)
        result = run_consensus(
            FastRobust(_fast_config()), 3, 3, faults=faults,
            omega="crash-aware", inputs=["STICKY", "b", "c"], deadline=20_000,
        )
        assert result.all_decided and result.agreed
        assert result.decided_values == {"STICKY"}

    def test_follower_crash_common_path_still_fast(self):
        # A crashed follower blocks unanimity, so the fast path may abort;
        # either way the leader's 2-delay decision stands and all agree.
        faults = FaultPlan().crash_process(2, at=0.0)
        result = run_consensus(
            FastRobust(_fast_config()), 3, 3, faults=faults, deadline=10_000
        )
        assert result.all_decided and result.agreed
        assert result.metrics.decisions[0].delays == 2.0

    def test_memory_crash_minority(self):
        faults = FaultPlan().crash_memory(1, at=0.0)
        result = run_consensus(
            FastRobust(_fast_config()), 3, 3, faults=faults, deadline=10_000
        )
        assert result.all_decided and result.agreed
        assert result.earliest_decision_delay == 2.0


class TestAsynchronyFallback:
    @pytest.mark.parametrize("seed", [1, 5])
    def test_partial_synchrony_state_safe_and_live(self, seed):
        result = run_consensus(
            FastRobust(_fast_config()), 3, 3,
            latency=PartialSynchrony(gst=120, chaos=25), seed=seed,
            deadline=60_000,
        )
        assert result.all_decided and result.agreed and result.valid
