"""The Byzantine replicated log: multi-shot Fast & Robust."""

import pytest

from repro import (
    CheapQuorumEquivocatorLeader,
    FaultPlan,
    SilentByzantine,
)
from repro.core.cluster import Cluster, ClusterConfig
from repro.smr.byzantine_log import (
    ByzantineLogConfig,
    ByzantineReplicatedLog,
    NOOP,
)

SCRIPTS = {
    0: [("tx", "a"), ("tx", "b"), ("tx", "c")],
    1: [("tx", "x"), ("tx", "y")],
    2: [("tx", "z")],
}


def _run(scripts=SCRIPTS, n_slots=3, faults=None, omega=None, deadline=60_000,
         n=3, m=3):
    proto = ByzantineReplicatedLog(scripts, ByzantineLogConfig(n_slots=n_slots))
    config = ClusterConfig(
        n, m, deadline=deadline, **({"omega": omega} if omega else {})
    )
    cluster = Cluster(proto, config, faults)
    result = cluster.run([None] * n)
    return proto, result


class TestCommonCase:
    def test_all_replicas_build_identical_logs(self):
        proto, result = _run()
        assert result.all_decided and result.agreed
        (log,) = result.decided_values
        assert log == (("tx", "a"), ("tx", "b"), ("tx", "c"))

    def test_per_slot_instances_are_checked_independently(self):
        proto, result = _run(n_slots=2)
        metrics = result.metrics
        assert set(metrics.instance_decisions) == {0, 1}
        for slot, book in metrics.instance_decisions.items():
            values = {rec.value for rec in book.values()}
            assert len(values) == 1, f"slot {slot} diverged"

    def test_leader_fast_path_every_slot(self):
        proto, result = _run(n_slots=2)
        # The leader's slot-0 decision is at t=2 and its slot decisions
        # stay ahead of the backup path (it decides each slot in CQ).
        slot0 = result.metrics.instance_decisions[0][0]
        assert slot0.decided_at == 2.0

    def test_applied_callback_order(self):
        seen = []
        proto = ByzantineReplicatedLog(
            SCRIPTS,
            ByzantineLogConfig(n_slots=2),
            apply_factory=lambda: lambda slot, cmd: seen.append((slot, cmd)),
        )
        cluster = Cluster(proto, ClusterConfig(3, 3, deadline=60_000))
        result = cluster.run([None] * 3)
        assert result.agreed
        per_replica = len(seen) // 3
        assert per_replica == 2
        assert seen[0][0] == 0  # slot order per replica


class TestFaultTolerance:
    def test_silent_byzantine_replica(self):
        faults = FaultPlan().make_byzantine(2, SilentByzantine())
        proto, result = _run(n_slots=2, faults=faults)
        assert result.all_decided and result.agreed
        (log,) = result.decided_values
        assert log == (("tx", "a"), ("tx", "b"))

    def test_byzantine_leader_first_slot(self):
        faults = FaultPlan().make_byzantine(0, CheapQuorumEquivocatorLeader())
        proto, result = _run(
            n_slots=1, faults=faults, omega=lambda now: 1, deadline=120_000
        )
        assert result.all_decided and result.agreed
        # The honest replicas agreed on SOME slot-0 value; their logs match.
        assert len(result.decided_values) == 1

    def test_short_scripts_pad_with_noops(self):
        scripts = {1: [("only", "p2")]}  # leader proposes nothing
        proto, result = _run(scripts=scripts, n_slots=1)
        assert result.agreed
        (log,) = result.decided_values
        assert log == (NOOP,)  # the leader's (padded) input won the slot


class TestNamespaceIsolation:
    def test_slots_use_disjoint_regions(self):
        proto = ByzantineReplicatedLog(SCRIPTS, ByzantineLogConfig(n_slots=2))
        regions = proto.regions(3, 3)
        ids = [r.region_id for r in regions]
        assert len(ids) == len(set(ids))
        assert any(r.startswith("cq0") for r in ids)
        assert any(r.startswith("cq1") for r in ids)
        assert any(r.startswith("neb0") for r in ids)

    def test_units_do_not_validate_across_namespaces(self):
        from repro.broadcast.nonequivocating import make_unit, unit_valid
        from tests.conftest import env_of, make_kernel

        env = env_of(make_kernel(), 0)
        unit = make_unit(env, 1, "m", namespace="neb0")
        assert unit_valid(env, 0, unit, 1, namespace="neb0")
        assert not unit_valid(env, 0, unit, 1, namespace="neb1")
