"""End-to-end elastic reconfiguration: splits, merges, swaps, crashes.

The acceptance scenario runs a workload *continuously* across a shard
split (2 -> 3) and a replica swap (add p4, remove p3) and checks:

* zero linearizability violations (dedup/at-most-once preserved end to
  end — the ledger's agreement monitor runs strict throughout);
* every key stays readable in every epoch (a monitor client reads a
  fixed key set — chosen so it *moves* in the split — through the whole
  run and asserts the values never disappear or regress);
* old-epoch leaders are provably fenced: after cutover their write
  attempts NAK at the memories.
"""

from dataclasses import dataclass
from typing import List

from repro import (
    AddReplica,
    AutoscalerConfig,
    ClosedLoopClient,
    ElasticConfig,
    ElasticKV,
    FaultScript,
    MergeShard,
    MoveLeader,
    RemoveReplica,
    ScriptedClient,
    SplitShard,
    UniformKeys,
)
from repro.mem.operations import WriteOp
from repro.reconfig.migrate import migration_client
from repro.shard.partitioner import ConsistentHashPartitioner
from repro.shard.service import shard_region
from repro.smr.kv import KVCommand
from repro.types import OpStatus, ProcessId


def moved_keys_for_split(n_shards: int, universe) -> List[str]:
    """Keys of *universe* that a split n -> n+1 hands to the new shard
    (computed on a scratch partitioner: rings are config-deterministic)."""
    scratch = ConsistentHashPartitioner(n_shards)
    scratch.stage(1, list(range(n_shards + 1)))
    return [k for k in universe if scratch.shard_for(k, version=1) == n_shards]


@dataclass
class MonitorClient:
    """Writes a fixed key set once, then re-reads it forever, asserting
    no key ever disappears or changes — across every epoch the run has."""

    client_id: int
    keys: List[str]
    rounds: int
    pid: int = 0
    gap: float = 25.0

    @property
    def n_ops(self) -> int:
        return len(self.keys) * (self.rounds + 1)

    def task(self, env, frontend, recorder):
        request_id = 0
        for key in self.keys:
            command = KVCommand(
                "put", key, value=f"stable-{key}",
                client=self.client_id, request_id=request_id,
            )
            request_id += 1
            started = env.now
            result = yield from frontend.submit(command)
            recorder.record(command, result, env.now - started)
        for _round in range(self.rounds):
            yield env.sleep(self.gap)
            for key in self.keys:
                command = KVCommand(
                    "get", key, client=self.client_id, request_id=request_id
                )
                request_id += 1
                started = env.now
                result = yield from frontend.submit(command)
                assert result == f"stable-{key}", (
                    f"key {key!r} unreadable mid-reconfiguration: got {result!r}"
                )
                recorder.record(command, result, env.now - started)


def seed_clients(n_keys: int, writers: int = 3, start_id: int = 100, pids=(0, 1)):
    """Scripted writers laying down ``k{i} -> seed-{i}`` deterministically.

    *pids* pins the writers — crash tests keep clients off the process
    they kill, since a crash takes its resident client tasks with it.
    """
    scripts = [[] for _ in range(writers)]
    for i in range(n_keys):
        scripts[i % writers].append(("put", f"k{i}", f"seed-{i}"))
    return [
        ScriptedClient(client_id=start_id + w, script=scripts[w], pid=pids[w % len(pids)])
        for w in range(writers)
    ]


def assert_store_has(service, key, value):
    owner = service.partitioner.shard_for(key)
    snapshot = service.snapshot(owner)
    assert snapshot.get(key) == value, (key, owner, snapshot.get(key), value)


def assert_region_fenced(service, shard, old_leader):
    """The paper's check: a deposed writer's post-revocation writes NAK."""
    region = shard_region(shard)
    for memory in service.kernel.memories:
        assert not memory.permission_of(region).can_write(ProcessId(old_leader))
        result = memory.apply(
            ProcessId(old_leader),
            WriteOp(region, (region, 10_000, old_leader), "zombie-write"),
        )
        assert result.status == OpStatus.NAK


class TestAcceptance:
    """The issue's acceptance scenario: split + replica swap under load."""

    def test_split_and_replica_swap_under_continuous_load(self):
        service = ElasticKV(
            ElasticConfig(
                n_shards=2,
                n_processes=4,
                initial_replicas=(0, 1, 2),
                batch_max=4,
                seed=21,
                retry_timeout=25.0,
                deadline=60_000.0,
            )
        )
        universe = [f"k{i}" for i in range(90)]
        # the monitor watches its own key namespace, chosen so it MOVES in
        # the split — the strongest readability check crosses the handoff
        moving = moved_keys_for_split(2, [f"mon{i}" for i in range(120)])
        assert len(moving) >= 5, "sampled universe must exercise the split"
        monitor = MonitorClient(client_id=1, keys=moving[:8], rounds=14, pid=1)
        live = [
            ClosedLoopClient(
                client_id=10 + i, n_ops=60, keys=UniformKeys(50, prefix="live"),
                think_time=6.0, pid=i % 2,
            )
            for i in range(3)
        ]
        seeds = seed_clients(90)
        service.schedule_reconfig(260.0, SplitShard())
        service.schedule_reconfig(420.0, AddReplica(3))
        service.schedule_reconfig(520.0, RemoveReplica(2))
        report = service.run_workload(seeds + [monitor] + live)

        assert report.ok, report.summary()
        assert service.kernel.metrics.violations == []
        assert service.epoch.number == 3
        assert tuple(service.shards) == (0, 1, 2)
        assert service.epoch.replicas == (0, 1, 3)
        # every seeded key is in its (current-epoch) owner's committed store
        for i, key in enumerate(universe):
            assert_store_has(service, key, f"seed-{i}")
        # the split genuinely moved the monitor's keys to the new shard
        assert all(service.partitioner.shard_for(k) == 2 for k in moving[:8])
        # fencing: shard g2 was led by the removed p3 (least-loaded at the
        # split); after the swap its region must NAK p3's writes
        deposed = [pair for e in service.epochs for pair in e.deposed]
        assert deposed, "the swap must depose at least one leader"
        for shard, old_leader in deposed:
            if shard in service.shards and service.leader_of(shard) != old_leader:
                assert_region_fenced(service, shard, old_leader)
        # the epoch timeline tells the whole story
        kinds = [r.kind for r in service.kernel.metrics.reconfig_timeline]
        assert kinds.count("activate") == 3
        # no merge ran: splits grant via the takeover prepare, never the
        # coordinator's tombstone storm
        assert "fence" not in kinds
        assert any(r.kind == "migrate" and r.detail["keys"] > 0
                   for r in service.kernel.metrics.reconfig_timeline)

    def test_every_epoch_readable_during_merge(self):
        service = ElasticKV(
            ElasticConfig(
                n_shards=3, n_processes=3, batch_max=4, seed=23,
                retry_timeout=25.0, deadline=60_000.0,
            )
        )
        universe = [f"k{i}" for i in range(60)]
        # monitor keys currently owned by the victim shard: they move out
        victim = 2
        scratch = ConsistentHashPartitioner(3)
        doomed = [k for k in (f"mon{i}" for i in range(120))
                  if scratch.shard_for(k) == victim]
        assert len(doomed) >= 5
        monitor = MonitorClient(client_id=1, keys=doomed[:8], rounds=10, pid=0)
        seeds = seed_clients(60)
        service.schedule_reconfig(250.0, MergeShard(victim))
        report = service.run_workload(seeds + [monitor])
        assert report.ok, report.summary()
        assert service.kernel.metrics.violations == []
        assert tuple(service.shards) == (0, 1)
        for i, key in enumerate(universe):
            assert_store_has(service, key, f"seed-{i}")
        # the tombstone fence: the retired region NAKs its old leader forever
        assert_region_fenced(service, victim, 2 % 3)
        fences = service.kernel.metrics.reconfigs_of("fence")
        assert any(f.subject == shard_region(victim) for f in fences)


class TestMigrationCrashSafety:
    """Satellite: crash the migration source mid-stream; at-most-once."""

    def _run(self, script, seed, n_keys=120, split_at=300.0, client_pids=(0, 2)):
        service = ElasticKV(
            ElasticConfig(
                n_shards=2, n_processes=3, batch_max=4, seed=seed,
                retry_timeout=25.0, deadline=80_000.0, faults=script,
            )
        )
        seeds = seed_clients(n_keys, writers=4, pids=client_pids)
        live = [
            ClosedLoopClient(
                client_id=50 + i, n_ops=40, keys=UniformKeys(40, prefix="live"),
                think_time=6.0, pid=client_pids[i % len(client_pids)],
            )
            for i in range(2)
        ]
        service.schedule_reconfig(split_at, SplitShard())
        report = service.run_workload(seeds + live)
        assert report.ok, report.summary()
        assert service.kernel.metrics.violations == []
        assert service.epoch.number == 1 and tuple(service.shards) == (0, 1, 2)
        universe = [f"k{i}" for i in range(n_keys)]
        for i, key in enumerate(universe):
            assert_store_has(service, key, f"seed-{i}")
        return service, universe

    def test_source_leader_crash_mid_stream(self):
        # g1's leader p2 crashes inside the migration window and recovers;
        # the stream stalls on its barrier, resumes, and nothing is lost
        # or doubled.
        script = FaultScript()
        script.at(330.0).crash_process(1).recover(at=430.0)
        service, universe = self._run(script, seed=31)
        moved = moved_keys_for_split(2, universe)
        new_leader_store = service.snapshot(2)
        machine = service.machine(service.leader_of(2), 2)
        # at-most-once: every moved key applied at the destination exactly
        # once per (key, value) migration identity — the dedup table has
        # one entry per streamed identity and the store one value per key
        for key in moved:
            assert key in new_leader_store
        migration_ids = (migration_client(1, 0), migration_client(1, 1))
        tokens = [t for t in machine.seen if t[0] in migration_ids]
        # every moved key arrived under a migration identity, and the dedup
        # table (one entry per applied identity) is what bounds re-applies
        # to at most once — re-sent identities land in `duplicates` instead
        put_keys = {rid[1] for _client, rid in tokens if rid[0] == "v"}
        assert put_keys >= set(moved)
        # crash really landed mid-epoch: the fault sits between the epoch
        # commit and its activation on the timeline
        ledger = service.kernel.metrics
        committed_at = next(r.time for r in ledger.reconfigs_of("cfg_commit"))
        activated_at = next(r.time for r in ledger.reconfigs_of("activate"))
        crash_at = next(r.time for r in ledger.faults_of("crash_proc"))
        assert committed_at < crash_at < activated_at

    def test_coordinator_crash_mid_stream_restreams_and_dedups(self):
        # p1 hosts the coordinator; killing it mid-migration forces the
        # respawned coordinator to re-run the epoch from the top — the
        # destination's dedup absorbs the replayed identities.
        script = FaultScript()
        script.at(330.0).crash_process(0).recover(at=430.0)
        service, universe = self._run(script, seed=33, client_pids=(1, 2))
        machine = service.machine(service.leader_of(2), 2)
        assert machine.duplicates > 0, (
            "a re-run migration must hit the dedup table, not re-apply"
        )
        ledger = service.kernel.metrics
        committed_at = next(r.time for r in ledger.reconfigs_of("cfg_commit"))
        activated_at = next(r.time for r in ledger.reconfigs_of("activate"))
        crash_at = next(r.time for r in ledger.faults_of("crash_proc"))
        assert committed_at < crash_at < activated_at


class TestDeleteSweep:
    def test_delete_during_dual_ownership_does_not_resurrect(self):
        """A key copied by the bulk pass then deleted at the source must
        not reappear at the new owner after cutover (the delta pass's
        delete sweep)."""
        service = ElasticKV(
            ElasticConfig(
                n_shards=2, n_processes=3, batch_max=4, seed=61,
                retry_timeout=25.0, deadline=60_000.0,
            )
        )
        moving = moved_keys_for_split(2, [f"dk{i}" for i in range(200)])
        doomed, kept = moving[0], moving[1]
        outcome = {}

        class _Deleter:
            client_id = 1
            n_ops = 4
            pid = 0

            def task(self, env, frontend, recorder):
                for request_id, command in enumerate(
                    (
                        KVCommand("put", doomed, value="v1", client=1, request_id=0),
                        KVCommand("put", kept, value="keep", client=1, request_id=1),
                    )
                ):
                    started = env.now
                    result = yield from frontend.submit(command)
                    recorder.record(command, result, env.now - started)
                # the split commits at t=100; by ~120 the bulk pass has
                # copied both keys — now delete one at the (old) owner
                yield env.sleep(120.0 - env.now)
                command = KVCommand("delete", doomed, client=1, request_id=2)
                started = env.now
                result = yield from frontend.submit(command)
                recorder.record(command, result, env.now - started)
                yield env.sleep(400.0)
                command = KVCommand("get", doomed, client=1, request_id=3)
                started = env.now
                result = yield from frontend.submit(command)
                outcome["post_cutover_get"] = result
                recorder.record(command, result, env.now - started)

        seeds = seed_clients(120)
        service.schedule_reconfig(100.0, SplitShard())
        report = service.run_workload(seeds + [_Deleter()])
        assert report.ok, report.summary()
        assert service.epoch.number == 1
        assert outcome["post_cutover_get"] is None, "deleted key resurrected!"
        assert doomed not in service.snapshot(2)
        assert service.snapshot(2).get(kept) == "keep"
        # and it went through the migration vocabulary: the new owner saw
        # the sweep's delete identity
        machine = service.machine(service.leader_of(2), 2)
        sweep_tokens = [t for t in machine.seen if t[1] == ("d", doomed)]
        assert sweep_tokens, "the delta pass must have swept the delete"


class TestLeaderMove:
    def test_move_leader_fences_the_old_one(self):
        service = ElasticKV(
            ElasticConfig(
                n_shards=2, n_processes=3, batch_max=4, seed=41,
                retry_timeout=25.0, deadline=40_000.0,
            )
        )
        seeds = seed_clients(40)
        live = [
            ClosedLoopClient(
                client_id=60, n_ops=40, keys=UniformKeys(30, prefix="live"),
                think_time=8.0, pid=1,
            )
        ]
        service.schedule_reconfig(120.0, MoveLeader(0, 2))
        report = service.run_workload(seeds + live)
        assert report.ok
        assert service.leader_of(0) == 2
        assert_region_fenced(service, 0, 0)
        # traffic keeps flowing through the new leader afterwards
        more = [ScriptedClient(client_id=300, script=[("put", "post", "move")], pid=1)]
        report2 = service.run_workload(more)
        assert report2.ok
        assert_store_has(service, "post", "move")


class TestScheduledRejection:
    def test_stale_scheduled_command_is_recorded_not_raised(self):
        # by fire time the victim is already merged away: the timer must
        # record a rejection, never unwind the kernel's run loop
        service = ElasticKV(
            ElasticConfig(
                n_shards=3, n_processes=3, batch_max=4, seed=47,
                retry_timeout=25.0, deadline=40_000.0,
            )
        )
        service.schedule_reconfig(100.0, MergeShard(2))
        service.schedule_reconfig(400.0, MergeShard(2))  # stale by then
        live = [
            ClosedLoopClient(
                client_id=1, n_ops=60, keys=UniformKeys(30), think_time=8.0, pid=0,
            )
        ]
        report = service.run_workload(live)
        assert report.ok
        assert tuple(service.shards) == (0, 1)
        rejected = service.kernel.metrics.reconfigs_of("rejected")
        assert rejected and "not an active shard" in rejected[0].detail["reason"]


class TestStormResilience:
    def test_cfg_region_survives_a_tombstone_storm(self):
        # the PR3 permission-chaos adversary aims Permission() at the
        # control plane's own region: every shot must NAK (non-retirable)
        # and reconfiguration keeps working afterwards
        from repro.mem.permissions import Permission

        script = FaultScript()
        script.at(50.0).permission_storm(
            pid=2, region="cfg", shots=4, spacing=5.0, permission=Permission()
        )
        service = ElasticKV(
            ElasticConfig(
                n_shards=2, n_processes=3, batch_max=4, seed=51,
                retry_timeout=25.0, deadline=40_000.0, faults=script,
            )
        )
        service.schedule_reconfig(120.0, SplitShard())
        live = [
            ClosedLoopClient(
                client_id=1, n_ops=50, keys=UniformKeys(30), think_time=6.0, pid=0,
            )
        ]
        report = service.run_workload(live)
        assert report.ok
        assert service.epoch.number == 1  # the split still went through
        storm = [
            record for record in service.kernel.metrics.faults_of("perm_change")
            if record.detail.get("region") == "cfg"
        ]
        assert storm and all(not record.detail["ok"] for record in storm)


class TestAutoscale:
    def test_zipfian_hotspot_triggers_a_split_end_to_end(self):
        service = ElasticKV(
            ElasticConfig(
                n_shards=2, n_processes=3, batch_max=4, seed=43,
                retry_timeout=25.0, deadline=80_000.0,
                autoscaler=AutoscalerConfig(
                    interval=60.0, split_above=40.0, cooldown=10_000.0,
                    max_shards=3,
                ),
            )
        )
        clients = [
            ClosedLoopClient(
                client_id=i, n_ops=120, keys=UniformKeys(60), think_time=1.0,
            )
            for i in range(4)
        ]
        report = service.run_workload(clients)
        assert report.ok, report.summary()
        assert service.epoch.number == 1, "the hot service must have split"
        assert tuple(service.shards) == (0, 1, 2)
        assert service.autoscaler.proposals
        assert service.kernel.metrics.violations == []
