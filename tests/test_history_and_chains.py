"""Trusted-history helpers and the per-memory chain runner."""

import pytest

from repro.consensus.chains import ChainRunner
from repro.trusted.history import (
    RecvEvent,
    SentEvent,
    TO_ALL,
    last_sent_matching,
    received_events,
    received_from,
    sent_count,
    sent_events,
)
from repro.types import MemoryId, ProcessId

from tests.conftest import env_of, make_kernel


def _history():
    return (
        SentEvent(1, TO_ALL, "a"),
        RecvEvent(ProcessId(1), 1, TO_ALL, "x"),
        SentEvent(2, ProcessId(2), "b"),
        RecvEvent(ProcessId(1), 2, TO_ALL, "y"),
        RecvEvent(ProcessId(2), 1, ProcessId(0), "z"),
    )


class TestHistoryHelpers:
    def test_sent_count(self):
        assert sent_count(_history()) == 2
        assert sent_count(()) == 0

    def test_received_from(self):
        events = received_from(_history(), ProcessId(1))
        assert [e.message for e in events] == ["x", "y"]

    def test_received_events(self):
        assert len(received_events(_history())) == 3

    def test_sent_events(self):
        assert [e.k for e in sent_events(_history())] == [1, 2]

    def test_last_sent_matching(self):
        event = last_sent_matching(_history(), lambda m: isinstance(m, str))
        assert event.message == "b"  # most recent
        assert last_sent_matching(_history(), lambda m: m == "a").k == 1
        assert last_sent_matching(_history(), lambda m: m == "nope") is None


class TestChainRunner:
    def test_chains_run_in_parallel(self, kernel):
        env = env_of(kernel, 0)
        runner = ChainRunner(env, "test")

        def chain(mid):
            result = yield from env.write(mid, "r", ("x", "k"), int(mid))
            return result.ok

        def main():
            yield from runner.launch(chain)
            yield from runner.wait_for(3)
            return env.now

        task = kernel.spawn(0, "main", main())
        kernel.run(until=100)
        assert task.result == 2.0  # parallel, not 6.0
        assert runner.results == {MemoryId(0): True, MemoryId(1): True, MemoryId(2): True}

    def test_wait_for_partial_count(self, kernel):
        kernel.crash_memory(MemoryId(2))
        env = env_of(kernel, 0)
        runner = ChainRunner(env, "partial")

        def chain(mid):
            result = yield from env.write(mid, "r", ("x", "k"), 1)
            return result.ok

        def main():
            yield from runner.launch(chain)
            done = yield from runner.wait_for(2)
            return (done, len(runner.results))

        task = kernel.spawn(0, "main", main())
        kernel.run(until=100)
        done, count = task.result
        assert done and count == 2  # the crashed memory's chain never lands

    def test_wait_for_timeout(self, kernel):
        for mid in range(3):
            kernel.crash_memory(MemoryId(mid))
        env = env_of(kernel, 0)
        runner = ChainRunner(env, "stuck")

        def chain(mid):
            result = yield from env.write(mid, "r", ("x", "k"), 1)
            return result.ok

        def main():
            yield from runner.launch(chain)
            done = yield from runner.wait_for(1, timeout=10.0)
            return (done, env.now)

        task = kernel.spawn(0, "main", main())
        kernel.run(until=100)
        assert task.result == (False, 10.0)

    def test_external_gate_sharing(self, kernel):
        env = env_of(kernel, 0)
        shared = env.new_gate("shared")
        runner = ChainRunner(env, "shared-test", gate=shared)
        assert runner.gate is shared

    def test_multi_step_chain_sequences_per_memory(self, kernel):
        env = env_of(kernel, 0)
        runner = ChainRunner(env, "two-step")

        def chain(mid):
            yield from env.write(mid, "r", ("x", "a"), 1)
            snap = yield from env.snapshot(mid, "r", ("x",))
            return snap.ok

        def main():
            yield from runner.launch(chain)
            yield from runner.wait_for(3)
            return env.now

        task = kernel.spawn(0, "main", main())
        kernel.run(until=100)
        assert task.result == 4.0  # two sequential ops per memory, parallel across
