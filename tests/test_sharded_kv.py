"""The sharded SMR service: partitioning, routing, scaling, convergence."""

import pytest

from repro.shard import (
    ClosedLoopClient,
    ConsistentHashPartitioner,
    OpenLoopClient,
    ScriptedClient,
    ShardConfig,
    ShardedKV,
    UniformKeys,
    YCSB_A,
    YCSB_B,
    ZipfianKeys,
)
from repro.smr.kv import KVCommand


class TestPartitioner:
    def test_deterministic_across_instances(self):
        a = ConsistentHashPartitioner(4)
        b = ConsistentHashPartitioner(4)
        keys = [f"key{i}" for i in range(500)]
        assert [a.shard_for(k) for k in keys] == [b.shard_for(k) for k in keys]

    def test_every_shard_owns_keys(self):
        partitioner = ConsistentHashPartitioner(8)
        counts = partitioner.distribution(f"key{i}" for i in range(2000))
        assert set(counts) == set(range(8))
        assert all(count > 0 for count in counts.values())

    def test_roughly_balanced_under_uniform_keys(self):
        partitioner = ConsistentHashPartitioner(4, vnodes=128)
        counts = partitioner.distribution(f"key{i}" for i in range(4000))
        for shard, count in counts.items():
            share = count / 4000
            assert 0.10 < share < 0.45, f"shard {shard} owns {share:.0%}"

    def test_adding_a_shard_moves_a_minority_of_keys(self):
        keys = [f"key{i}" for i in range(2000)]
        before = ConsistentHashPartitioner(4)
        after = ConsistentHashPartitioner(5)
        moved = sum(
            1 for k in keys if before.shard_for(k) != after.shard_for(k)
        )
        # consistent hashing: ~1/5 of keys move, never a full reshuffle
        assert moved / len(keys) < 0.45

    def test_validation(self):
        with pytest.raises(ValueError):
            ConsistentHashPartitioner(0)
        with pytest.raises(ValueError):
            ConsistentHashPartitioner(2, vnodes=0)


def _converged(service, shards):
    for g in range(shards):
        snapshots = [
            service.machine(pid, g).snapshot()
            for pid in range(service.config.n_processes)
        ]
        assert all(s == snapshots[0] for s in snapshots), f"shard {g} diverged"


class TestRouting:
    def test_keys_land_only_on_their_owning_shard(self):
        service = ShardedKV(ShardConfig(n_shards=4, batch_max=4, seed=2))
        clients = [
            ClosedLoopClient(client_id=i, n_ops=10, keys=UniformKeys(200), mix=YCSB_A)
            for i in range(6)
        ]
        report = service.run_workload(clients)
        assert report.completed_requests == 60
        placed = 0
        for g in range(4):
            for key in service.snapshot(g):
                assert service.partitioner.shard_for(key) == g
                placed += 1
        assert placed > 0

    def test_all_replicas_of_all_shards_converge(self):
        service = ShardedKV(ShardConfig(n_shards=4, batch_max=8, seed=5))
        clients = [
            ClosedLoopClient(client_id=i, n_ops=8, keys=ZipfianKeys(128), mix=YCSB_A)
            for i in range(9)
        ]
        report = service.run_workload(clients)
        assert report.completed_requests == 72
        _converged(service, 4)

    def test_reads_see_writes_through_the_log(self):
        service = ShardedKV(ShardConfig(n_shards=2, batch_max=2, seed=1))
        script = [("put", "alpha", 42), ("get", "alpha", None)]
        client = ScriptedClient(client_id=0, script=script)
        report = service.run_workload([client])
        assert report.completed_requests == 2
        leader = service.leader_of(service.partitioner.shard_for("alpha"))
        machine = service.machine(leader, service.partitioner.shard_for("alpha"))
        applied = [(cmd.op, result) for _slot, cmd, result in machine.applied]
        assert applied == [("put", None), ("get", 42)]

    def test_anonymous_commands_are_rejected_by_the_frontend(self):
        service = ShardedKV(ShardConfig(n_shards=1))
        frontend = service.frontends[0]
        with pytest.raises(ValueError):
            next(frontend.submit(KVCommand("put", "k", 1)))

    def test_commands_per_request_accounting(self):
        service = ShardedKV(ShardConfig(n_shards=2, batch_max=4, seed=9))
        clients = [
            ClosedLoopClient(client_id=i, n_ops=6, keys=UniformKeys(64), mix=YCSB_B)
            for i in range(4)
        ]
        report = service.run_workload(clients)
        assert report.completed_requests == 24
        # every distinct request was committed exactly once service-wide
        assert report.committed_commands == 24
        assert report.elapsed > 0
        assert report.commands_per_delay > 0
        table = report.per_shard_table()
        assert "shard" in table and "g0" in table
        assert "requests" in report.summary()


class TestScaling:
    """The acceptance criterion: sharding + batching scale throughput."""

    def _run(self, n_shards, batch_max, seed=7):
        service = ShardedKV(
            ShardConfig(n_shards=n_shards, batch_max=batch_max, seed=seed)
        )
        clients = [
            ClosedLoopClient(
                client_id=i, n_ops=8, keys=ZipfianKeys(128), mix=YCSB_A
            )
            for i in range(24)
        ]
        report = service.run_workload(clients)
        assert report.completed_requests == 24 * 8
        _converged(service, n_shards)
        return report

    def test_four_shards_commit_4x_the_baseline(self):
        baseline = self._run(n_shards=1, batch_max=1)
        sharded = self._run(n_shards=4, batch_max=8)
        ratio = sharded.commands_per_delay / baseline.commands_per_delay
        assert ratio >= 4.0, (
            f"4 shards / batch 8: {sharded.commands_per_delay:.2f} cmds/delay, "
            f"1 shard / batch 1: {baseline.commands_per_delay:.2f} — "
            f"only {ratio:.1f}x"
        )

    def test_batching_alone_raises_throughput(self):
        unbatched = self._run(n_shards=1, batch_max=1)
        batched = self._run(n_shards=1, batch_max=8)
        assert batched.commands_per_delay > 1.5 * unbatched.commands_per_delay
        assert batched.mean_batch_fill > 1.5

    def test_baseline_commits_one_command_per_two_delays(self):
        # Sanity-pins the scaling comparison: the 1-shard/batch-1 service
        # inherits the seed's two-delay-per-commit fast path.
        baseline = self._run(n_shards=1, batch_max=1)
        assert baseline.commands_per_delay == pytest.approx(0.5, rel=0.15)


class TestOpenLoop:
    def test_open_loop_clients_complete_and_converge(self):
        service = ShardedKV(ShardConfig(n_shards=2, batch_max=8, seed=4))
        clients = [
            OpenLoopClient(
                client_id=i,
                n_ops=10,
                keys=UniformKeys(64),
                mix=YCSB_A,
                interarrival=1.0,
            )
            for i in range(4)
        ]
        report = service.run_workload(clients)
        assert report.completed_requests == 40
        _converged(service, 2)
        latency = report.latency_summary()
        assert latency.count == 40
        assert latency.p99 >= latency.p50 >= 0

    def test_open_loop_saturation_fills_batches(self):
        # Arrivals faster than the 2-delay commit path must pile into
        # batches instead of stretching the queue forever.
        service = ShardedKV(ShardConfig(n_shards=1, batch_max=8, seed=4))
        clients = [
            OpenLoopClient(
                client_id=i,
                n_ops=16,
                keys=UniformKeys(32),
                mix=YCSB_A,
                interarrival=0.25,
            )
            for i in range(2)
        ]
        report = service.run_workload(clients)
        assert report.completed_requests == 32
        assert report.mean_batch_fill > 1.5


class TestByzantineShards:
    def test_mixed_pmp_and_bft_shards_converge(self):
        service = ShardedKV(
            ShardConfig(
                n_shards=2,
                batch_max=4,
                seed=3,
                bft_shards=(1,),
                bft_max_slots=12,
            )
        )
        clients = [
            ClosedLoopClient(client_id=i, n_ops=4, keys=UniformKeys(64), mix=YCSB_A)
            for i in range(6)
        ]
        report = service.run_workload(clients)
        assert report.completed_requests == 24
        _converged(service, 2)
        # no agreement violations recorded across either backend
        assert not service.kernel.metrics.violations

    def test_bft_shard_config_validated(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            ShardConfig(n_shards=2, bft_shards=(5,))


class TestBackToBackWorkloads:
    def test_second_run_reports_only_its_own_traffic(self):
        service = ShardedKV(ShardConfig(n_shards=2, batch_max=4, seed=6))

        def burst(client_base, n_clients=4, ops=6):
            return [
                ClosedLoopClient(
                    client_id=client_base + i,
                    n_ops=ops,
                    keys=UniformKeys(64),
                    mix=YCSB_A,
                )
                for i in range(n_clients)
            ]

        first = service.run_workload(burst(0))
        second = service.run_workload(burst(100))
        for report in (first, second):
            assert report.ok
            assert report.completed_requests == 24
            # per-run deltas: each report accounts for exactly its traffic
            assert report.committed_commands == 24
            assert report.elapsed > 0
        _converged(service, 2)

    def test_reused_client_ids_are_rejected(self):
        from repro.errors import ConfigurationError

        service = ShardedKV(ShardConfig(n_shards=1, batch_max=2, seed=6))
        service.run_workload(
            [ScriptedClient(client_id=0, script=[("put", "k", "v1")])]
        )
        # A reused id would be silently absorbed by at-most-once dedup
        # (request (0, 0) is already in the state machines' seen map), so
        # the service must refuse it loudly.
        with pytest.raises(ConfigurationError, match="already ran"):
            service.run_workload(
                [ScriptedClient(client_id=0, script=[("put", "k", "v2")])]
            )
        assert service.snapshot(0) == {"k": "v1"}

    def test_duplicate_client_ids_within_a_workload_are_rejected(self):
        from repro.errors import ConfigurationError

        service = ShardedKV(ShardConfig(n_shards=1))
        clients = [
            ScriptedClient(client_id=1, script=[("put", "a", 1)]),
            ScriptedClient(client_id=1, script=[("put", "b", 2)]),
        ]
        with pytest.raises(ConfigurationError, match="duplicate client ids"):
            service.run_workload(clients)


class TestServiceConfig:
    def test_shard_leaders_round_robin_across_processes(self):
        service = ShardedKV(ShardConfig(n_shards=5, n_processes=3))
        assert [service.leader_of(g) for g in range(5)] == [0, 1, 2, 0, 1]

    def test_config_validation(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            ShardConfig(n_shards=0)
        with pytest.raises(ConfigurationError):
            ShardConfig(batch_max=0)
