"""The service-level model-checking targets: the PR 5 quorum-read window
and the epoch cutover with a deposed coordinator.  These spaces are too
large to exhaust at useful depth, so the tests pin bounded sweeps: the
default schedule plus a budgeted neighbourhood must be violation-free,
and the scenario oracles must actually bite on corrupted state."""

from __future__ import annotations

import pytest

from repro.check import Budget, explore, make_scenario
from repro.check.scenarios import SCENARIOS


class TestQuorumReadWindow:
    def test_default_schedule_passes_all_oracles(self):
        scenario = make_scenario("quorum-read")
        run = scenario.build()
        run.execute()
        assert run.check(()) == []

    def test_bounded_sweep_finds_no_violations(self):
        report = explore(
            make_scenario("quorum-read"), Budget(divergences=1, max_runs=150)
        )
        assert report.violations == 0
        assert report.runs == 150  # budget honoured

    def test_replica_divergence_oracle_bites(self):
        # corrupt one replica's applied log and the oracle must name it
        from repro.shard.router import READ_QUORUM
        from repro.shard.service import ShardConfig, ShardedKV
        from repro.shard.workload import ScriptedClient

        service = ShardedKV(
            ShardConfig(n_shards=1, n_processes=3, batch_max=2, vnodes=8,
                        seed=0, read_mode=READ_QUORUM)
        )
        report = service.run_workload(
            [ScriptedClient(client_id=1, script=[("put", "k", "v")], pid=1)]
        )
        assert report.ok
        machine = service.machine(2, 0)
        if machine.applied:
            slot, command, _result = machine.applied[0]
            machine.applied[0] = (slot, command, "corrupted")
        else:
            machine.applied.append((0, "phantom", "corrupted"))
        errors = service.replica_divergence()
        assert errors and "shard 0" in errors[0]


class TestEpochCutover:
    def test_default_schedule_moves_and_fences_the_leader(self):
        scenario = make_scenario("epoch-cutover")
        run = scenario.build()
        run.execute()
        assert run.check(()) == []

    def test_bounded_sweep_finds_no_violations(self):
        report = explore(
            make_scenario("epoch-cutover"), Budget(divergences=1, max_runs=40)
        )
        assert report.violations == 0

    def test_fence_oracle_skipped_only_for_revoke_injections(self):
        scenario = make_scenario("epoch-cutover")
        run = scenario.build()
        run.execute()
        # with a revoke injection reported, the fence check must not fire
        # (the injection legitimately rewrites permissions)...
        assert run.check(("revoke-shard0-p1",)) == []
        # ...and a crash-style injection does not exempt it
        assert run.check(("crash-p1",)) == []


class TestRegistry:
    def test_all_targets_registered(self):
        # the regression corpus registers lazily; force it
        import repro.check.regressions  # noqa: F401

        assert {
            "pmp-single",
            "quorum-read",
            "epoch-cutover",
            "regression-unpark-collision",
            "regression-stale-wake",
        } <= set(SCENARIOS)

    def test_params_roundtrip_through_registry(self):
        scenario = make_scenario("pmp-single", {"seed": 3, "crashes": 0})
        assert scenario.params["seed"] == 3
        rebuilt = make_scenario(scenario.name, scenario.params)
        assert rebuilt.params == scenario.params
