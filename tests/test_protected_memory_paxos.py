"""Protected Memory Paxos (Algorithm 7, Theorem 5.1)."""

import pytest

from repro import (
    FaultPlan,
    JitteredSynchrony,
    PartialSynchrony,
    PmpConfig,
    ProtectedMemoryPaxos,
    run_consensus,
)
from repro.consensus.omega import crash_aware_omega, leader_schedule
from repro.core.cluster import Cluster, ClusterConfig
from repro.types import MemoryId


class TestTwoDeciding:
    def test_initial_leader_decides_in_two_delays(self):
        result = run_consensus(ProtectedMemoryPaxos(), 3, 3)
        assert result.all_decided and result.agreed and result.valid
        assert result.earliest_decision_delay == 2.0

    def test_two_delays_across_sizes(self):
        for n, m in [(1, 3), (2, 3), (3, 5), (5, 3), (7, 5)]:
            result = run_consensus(ProtectedMemoryPaxos(), n, m, deadline=3000)
            assert result.earliest_decision_delay == 2.0, f"n={n},m={m}"
            assert result.all_decided

    def test_leader_value_decided(self):
        result = run_consensus(
            ProtectedMemoryPaxos(), 3, 3, inputs=["LEAD", "b", "c"]
        )
        assert result.decided_values == {"LEAD"}

    def test_leader_writes_without_reading_first(self):
        """The two-delay path is write-only: no reads before the decision
        (the whole point of the permission optimization)."""
        result = run_consensus(ProtectedMemoryPaxos(), 3, 3, trace=True)
        tracer = result.kernel.tracer
        decide = next(e for e in tracer.of_kind("decide"))
        leader_ops = [
            e
            for e in tracer.of_kind("invoke")
            if e.actor.startswith("p1/") and e.time < decide.time
        ]
        assert leader_ops, "leader must have issued operations"
        assert all(e.detail["op"] == "WriteOp" for e in leader_ops)


class TestResilienceNEqualsFPlus1:
    def test_n_2_leader_crash_before_writing(self):
        """n = f_P + 1 = 2: one crash of two processes is survivable —
        impossible for message-passing consensus (needs n >= 2f+1)."""
        config = ClusterConfig(n_processes=2, n_memories=3, deadline=5000)
        faults = FaultPlan().crash_process(0, at=0.0)  # before any write
        cluster = Cluster(ProtectedMemoryPaxos(), config, faults)
        cluster.kernel.omega = crash_aware_omega(cluster.kernel)
        result = cluster.run(["a", "b"])
        assert result.all_decided and result.agreed
        assert result.decided_values == {"b"}

    def test_n_2_leader_crash_with_write_in_flight(self):
        """The crashed leader's write (issued at t=0) still lands at t=1:
        the successor's prepare phase sees it and MUST adopt it."""
        config = ClusterConfig(n_processes=2, n_memories=3, deadline=5000)
        faults = FaultPlan().crash_process(0, at=1.0)
        cluster = Cluster(ProtectedMemoryPaxos(), config, faults)
        cluster.kernel.omega = crash_aware_omega(cluster.kernel)
        result = cluster.run(["a", "b"])
        assert result.all_decided and result.agreed
        assert result.decided_values == {"a"}

    def test_n_3_two_crashes(self):
        config = ClusterConfig(n_processes=3, n_memories=3, deadline=5000)
        faults = FaultPlan().crash_process(0, at=0.0).crash_process(1, at=0.0)
        cluster = Cluster(ProtectedMemoryPaxos(), config, faults)
        cluster.kernel.omega = crash_aware_omega(cluster.kernel)
        result = cluster.run(["a", "b", "c"])
        assert result.all_decided and result.agreed
        assert result.decided_values == {"c"}

    def test_value_adoption_when_leader_crashes_mid_write(self):
        """If the first leader's value reached the memories, the successor
        must adopt it, not propose its own."""
        config = ClusterConfig(n_processes=2, n_memories=3, deadline=5000)
        faults = FaultPlan().crash_process(0, at=2.0)  # right as writes land
        cluster = Cluster(ProtectedMemoryPaxos(), config, faults)
        cluster.kernel.omega = crash_aware_omega(cluster.kernel)
        result = cluster.run(["FIRST", "second"])
        assert result.agreed
        # p1 decided FIRST iff its write completed; either way p2 must agree
        # with whatever is recoverable — and with the write acked at t=2.0
        # the value is on a majority, so it must be FIRST.
        assert result.decided_values == {"FIRST"}


class TestMemoryFailures:
    def test_tolerates_memory_minority(self):
        faults = FaultPlan().crash_memory(1, at=0.0)
        result = run_consensus(ProtectedMemoryPaxos(), 3, 3, faults=faults)
        assert result.all_decided
        assert result.earliest_decision_delay == 2.0

    def test_tolerates_two_of_five(self):
        faults = FaultPlan().crash_memory(0, at=0.0).crash_memory(4, at=0.0)
        result = run_consensus(ProtectedMemoryPaxos(), 3, 5, faults=faults)
        assert result.all_decided and result.agreed

    def test_memory_majority_crash_blocks(self):
        faults = FaultPlan().crash_memory(0, at=0.0).crash_memory(1, at=0.0)
        result = run_consensus(
            ProtectedMemoryPaxos(), 3, 3, faults=faults, deadline=500
        )
        assert not result.all_decided

    def test_mid_run_memory_crash(self):
        faults = FaultPlan().crash_memory(2, at=1.5)
        result = run_consensus(ProtectedMemoryPaxos(), 3, 3, faults=faults)
        assert result.all_decided and result.agreed


class TestPermissionMechanics:
    def test_takeover_naks_old_leader(self):
        """A new leader's grab makes the old leader's writes fail — the
        uncontended-instantaneous guarantee."""
        schedule = [(0.0, 0), (1.0, 1)]
        result = run_consensus(
            ProtectedMemoryPaxos(), 2, 3, omega=leader_schedule(schedule),
            deadline=5000,
        )
        assert result.agreed and result.valid

    def test_flapping_leadership_stays_safe(self):
        schedule = [(float(t), t % 2) for t in range(0, 100, 5)]
        result = run_consensus(
            ProtectedMemoryPaxos(), 2, 3, omega=leader_schedule(schedule),
            deadline=10_000, seed=3,
        )
        assert result.agreed or not result.decided_values

    def test_non_leader_cannot_write(self):
        result = run_consensus(ProtectedMemoryPaxos(), 3, 3)
        memory = result.kernel.memories[0]
        perm = memory.permission_of("pmp")
        assert perm.can_write(0)
        assert not perm.can_write(1)
        assert not perm.can_write(2)


class TestAsynchrony:
    @pytest.mark.parametrize("seed", [2, 4, 6])
    def test_safe_under_jitter(self, seed):
        result = run_consensus(
            ProtectedMemoryPaxos(), 3, 3, latency=JitteredSynchrony(0.6),
            seed=seed, deadline=5000,
        )
        assert result.agreed and result.valid

    @pytest.mark.parametrize("seed", [1, 9])
    def test_live_after_gst(self, seed):
        result = run_consensus(
            ProtectedMemoryPaxos(), 2, 3,
            latency=PartialSynchrony(gst=50, chaos=10), seed=seed,
            deadline=20_000,
        )
        assert result.all_decided and result.agreed
