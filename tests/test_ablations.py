"""The ablation switches: each fast-path mechanism can be turned off."""

import pytest

from repro import (
    FastRobust,
    FastRobustConfig,
    FaultPlan,
    PmpConfig,
    ProtectedMemoryPaxos,
    SilentByzantine,
    run_consensus,
)


class TestPmpSkipAblation:
    def test_skip_off_restores_prepare_phase(self):
        config = PmpConfig(skip_first_attempt=False, batch_chains=False)
        result = run_consensus(ProtectedMemoryPaxos(config), 3, 3)
        assert result.all_decided and result.agreed
        assert result.earliest_decision_delay == 8.0  # cp + write + read + write

    def test_skip_off_batched_prepare_is_one_round(self):
        # Doorbell batching fuses cp + probe + snapshot into one chain:
        # the full prepare costs one memory round, so skip-off is 2 + 2.
        config = PmpConfig(skip_first_attempt=False)
        result = run_consensus(ProtectedMemoryPaxos(config), 3, 3)
        assert result.all_decided and result.agreed
        assert result.earliest_decision_delay == 4.0  # chain + write

    def test_skip_off_still_safe_under_contention(self):
        from repro.consensus.omega import leader_schedule

        config = PmpConfig(skip_first_attempt=False)
        result = run_consensus(
            ProtectedMemoryPaxos(config), 2, 3,
            omega=leader_schedule([(0.0, 0), (3.0, 1)]),
            deadline=5000,
        )
        assert result.agreed and result.valid

    def test_default_keeps_two_delays(self):
        result = run_consensus(ProtectedMemoryPaxos(PmpConfig()), 3, 3)
        assert result.earliest_decision_delay == 2.0


class TestFastRobustPathAblation:
    def test_backup_only_mode_decides(self):
        config = FastRobustConfig(enable_fast_path=False)
        result = run_consensus(FastRobust(config), 3, 3, deadline=60_000)
        assert result.all_decided and result.agreed and result.valid
        assert result.earliest_decision_delay > 2.0

    def test_backup_only_mode_is_byzantine_tolerant(self):
        config = FastRobustConfig(enable_fast_path=False)
        faults = FaultPlan().make_byzantine(2, SilentByzantine())
        result = run_consensus(
            FastRobust(config), 3, 3, faults=faults, deadline=60_000
        )
        assert result.all_decided and result.agreed

    def test_backup_only_inputs_are_bare_priority(self):
        """Without the fast path there are no certificates: any input can
        win, but exactly one does."""
        config = FastRobustConfig(enable_fast_path=False)
        result = run_consensus(
            FastRobust(config), 3, 3, inputs=["x", "y", "z"], deadline=60_000
        )
        assert result.decided_values <= {"x", "y", "z"}
        assert len(result.decided_values) == 1
