"""Memory semantics: regions, permission enforcement, snapshots,
legalChange no-op behaviour."""

import pytest

from repro.errors import ConfigurationError
from repro.mem.layout import MemoryLayout
from repro.mem.memory import Memory
from repro.mem.operations import ChangePermissionOp, ReadOp, SnapshotOp, WriteOp
from repro.mem.permissions import Permission, revoke_only_policy
from repro.mem.regions import RegionSpec
from repro.types import MemoryId, ProcessId, is_bottom


def _memory(regions) -> Memory:
    return Memory(MemoryId(0), MemoryLayout(list(regions)))


def _swmr_memory(n=3):
    return _memory(
        [RegionSpec(f"s:{p}", ("s", p), Permission.swmr(p, range(n))) for p in range(n)]
    )


class TestReadWrite:
    def test_owner_writes_and_reads(self):
        mem = _swmr_memory()
        assert mem.apply(ProcessId(0), WriteOp("s:0", ("s", 0, "k"), 42)).ok
        result = mem.apply(ProcessId(0), ReadOp("s:0", ("s", 0, "k")))
        assert result.ok and result.value == 42

    def test_non_owner_write_naks(self):
        mem = _swmr_memory()
        result = mem.apply(ProcessId(1), WriteOp("s:0", ("s", 0, "k"), 13))
        assert not result.ok
        assert is_bottom(mem.peek(("s", 0, "k")))

    def test_everyone_reads_swmr(self):
        mem = _swmr_memory()
        mem.apply(ProcessId(0), WriteOp("s:0", ("s", 0, "k"), "v"))
        for p in range(3):
            assert mem.apply(ProcessId(p), ReadOp("s:0", ("s", 0, "k"))).value == "v"

    def test_key_outside_region_naks(self):
        mem = _swmr_memory()
        result = mem.apply(ProcessId(0), WriteOp("s:0", ("other", "k"), 1))
        assert not result.ok

    def test_unknown_region_naks(self):
        mem = _swmr_memory()
        assert not mem.apply(ProcessId(0), ReadOp("nope", ("s", 0, "k"))).ok

    def test_unwritten_register_reads_bottom(self):
        mem = _swmr_memory()
        result = mem.apply(ProcessId(1), ReadOp("s:0", ("s", 0, "never")))
        assert result.ok and is_bottom(result.value)

    def test_overwrite_replaces(self):
        mem = _swmr_memory()
        mem.apply(ProcessId(0), WriteOp("s:0", ("s", 0, "k"), "old"))
        mem.apply(ProcessId(0), WriteOp("s:0", ("s", 0, "k"), "new"))
        assert mem.apply(ProcessId(1), ReadOp("s:0", ("s", 0, "k"))).value == "new"


class TestSnapshot:
    def test_snapshot_returns_prefix_view(self):
        mem = _swmr_memory()
        mem.apply(ProcessId(0), WriteOp("s:0", ("s", 0, "a"), 1))
        mem.apply(ProcessId(0), WriteOp("s:0", ("s", 0, "b"), 2))
        result = mem.apply(ProcessId(2), SnapshotOp("s:0", ("s", 0)))
        assert result.ok
        assert result.value == {("s", 0, "a"): 1, ("s", 0, "b"): 2}

    def test_snapshot_excludes_other_regions(self):
        mem = _swmr_memory()
        mem.apply(ProcessId(0), WriteOp("s:0", ("s", 0, "a"), 1))
        mem.apply(ProcessId(1), WriteOp("s:1", ("s", 1, "a"), 9))
        result = mem.apply(ProcessId(2), SnapshotOp("s:0", ("s", 0)))
        assert ("s", 1, "a") not in result.value

    def test_snapshot_without_read_permission_naks(self):
        region = RegionSpec("priv", ("priv",), Permission(readwrite=frozenset({0})))
        mem = _memory([region])
        assert not mem.apply(ProcessId(1), SnapshotOp("priv", ("priv",))).ok

    def test_empty_snapshot(self):
        mem = _swmr_memory()
        result = mem.apply(ProcessId(0), SnapshotOp("s:1", ("s", 1)))
        assert result.ok and result.value == {}


class TestChangePermission:
    def _revocable(self):
        revoked = Permission.read_only(range(3))
        return _memory(
            [
                RegionSpec(
                    "lead",
                    ("lead",),
                    Permission.exclusive_writer(0, range(3)),
                    legal_change=revoke_only_policy(revoked),
                )
            ]
        ), revoked

    def test_legal_change_applies(self):
        mem, revoked = self._revocable()
        result = mem.apply(ProcessId(2), ChangePermissionOp("lead", revoked))
        assert result.ok
        assert mem.permission_of("lead") == revoked

    def test_illegal_change_is_noop(self):
        mem, _ = self._revocable()
        grab = Permission.exclusive_writer(2, range(3))
        before = mem.permission_of("lead")
        result = mem.apply(ProcessId(2), ChangePermissionOp("lead", grab))
        assert not result.ok
        assert mem.permission_of("lead") == before

    def test_write_after_revocation_naks(self):
        mem, revoked = self._revocable()
        assert mem.apply(ProcessId(0), WriteOp("lead", ("lead", "v"), 1)).ok
        mem.apply(ProcessId(2), ChangePermissionOp("lead", revoked))
        assert not mem.apply(ProcessId(0), WriteOp("lead", ("lead", "v"), 2)).ok
        # The old value is preserved.
        assert mem.apply(ProcessId(1), ReadOp("lead", ("lead", "v"))).value == 1

    def test_static_region_never_changes(self):
        mem = _swmr_memory()
        anything = Permission.open(range(3))
        result = mem.apply(ProcessId(0), ChangePermissionOp("s:0", anything))
        assert not result.ok


class TestCounters:
    def test_op_counters(self):
        mem = _swmr_memory()
        mem.apply(ProcessId(0), WriteOp("s:0", ("s", 0, "a"), 1))
        mem.apply(ProcessId(1), ReadOp("s:0", ("s", 0, "a")))
        mem.apply(ProcessId(1), SnapshotOp("s:0", ("s", 0)))
        mem.apply(ProcessId(1), WriteOp("s:0", ("s", 0, "a"), 2))  # nak
        assert mem.counts.writes == 2
        assert mem.counts.reads == 1
        assert mem.counts.snapshots == 1
        assert mem.counts.naks == 1


class TestLayout:
    def test_duplicate_region_rejected(self):
        with pytest.raises(ConfigurationError):
            MemoryLayout(
                [
                    RegionSpec("a", ("a",), Permission.open(range(2))),
                    RegionSpec("a", ("b",), Permission.open(range(2))),
                ]
            )

    def test_overlapping_regions_rejected(self):
        with pytest.raises(ConfigurationError):
            MemoryLayout(
                [
                    RegionSpec("a", ("x",), Permission.open(range(2))),
                    RegionSpec("b", ("x", 1), Permission.open(range(2))),
                ]
            )

    def test_region_for_lookup(self):
        layout = MemoryLayout(
            [
                RegionSpec("a", ("a",), Permission.open(range(2))),
                RegionSpec("b", ("b",), Permission.open(range(2))),
            ]
        )
        assert layout.region_for(("a", 1, 2)).region_id == "a"
        assert layout.region_for(("b",)).region_id == "b"
        assert layout.region_for(("c",)) is None

    def test_merged_with(self):
        first = MemoryLayout([RegionSpec("a", ("a",), Permission.open(range(2)))])
        second = MemoryLayout([RegionSpec("b", ("b",), Permission.open(range(2)))])
        merged = first.merged_with(second)
        assert merged.region_ids() == ["a", "b"]

    def test_region_contains(self):
        spec = RegionSpec("a", ("neb", 2), Permission.open(range(3)))
        assert spec.contains(("neb", 2, 1, 0))
        assert not spec.contains(("neb", 3, 1, 0))
        assert not spec.contains(("neb",))

    def test_region_overlap_detection(self):
        a = RegionSpec("a", ("x",), Permission.open(range(2)))
        b = RegionSpec("b", ("x", 1), Permission.open(range(2)))
        c = RegionSpec("c", ("y",), Permission.open(range(2)))
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c)
