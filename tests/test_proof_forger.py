"""End-to-end certificate forgery against Fast & Robust's backup phase."""

import pytest

from repro import (
    FastRobust,
    FastRobustConfig,
    FaultPlan,
    ProofForger,
    run_consensus,
)
from repro.consensus.cheap_quorum import CheapQuorumConfig

_FR = FastRobustConfig(
    cheap_quorum=CheapQuorumConfig(leader_timeout=15.0, unanimity_timeout=25.0)
)


class TestProofForger:
    def test_forged_certificate_never_wins(self):
        faults = FaultPlan().make_byzantine(2, ProofForger("FORGED"))
        result = run_consensus(
            FastRobust(_FR), 3, 3, faults=faults,
            inputs=["honest-L", "honest-2", "ignored"], deadline=60_000,
        )
        assert result.all_decided and result.agreed
        assert result.decided_values == {"honest-L"}  # the real fast path won
        assert "FORGED" not in result.decided_values

    def test_forged_certificate_with_crashed_leader(self):
        """Harder: the honest leader never writes, so the honest inputs are
        bare-class — even then the forged 'top priority' value must be
        demoted to bare and cannot be guaranteed the win by its tag."""
        faults = (
            FaultPlan()
            .crash_process(0, at=0.0)
            .make_byzantine(2, ProofForger("FORGED"))
        )
        result = run_consensus(
            FastRobust(_FR), 5, 3, faults=faults,
            omega="crash-aware",
            inputs=["dead", "h1", "forger", "h2", "h3"],
            deadline=120_000,
        )
        assert result.all_decided and result.agreed
        # Weak Byzantine agreement permits a Byzantine *input* to be the
        # decision (it is one bare value among others once demoted); what
        # must fail is the forged *certificate*.  We verify the demotion
        # directly: the exact SetupValue the forger broadcast carries
        # effective priority BARE at every honest receiver.
        from repro.consensus.messages import SetupValue
        from repro.consensus.preferential_paxos import (
            PRIORITY_BARE,
            effective_priority,
        )
        from repro.crypto.proofs import assemble_proof
        from repro.sim.environment import ProcessEnv
        from repro.types import ProcessId

        kernel = result.kernel
        forger_env = ProcessEnv(kernel, ProcessId(2))
        inner = forger_env.sign("FORGED")
        fake = assemble_proof(
            kernel.authority, forger_env.key, inner, (forger_env.sign(inner),)
        )
        sv = SetupValue(value="FORGED", priority=0, payload=fake)
        honest_env = ProcessEnv(kernel, ProcessId(1))
        assert (
            effective_priority(honest_env, sv, ProcessId(0), 5) == PRIORITY_BARE
        )

    def test_forger_alone_cannot_block_termination(self):
        faults = FaultPlan().make_byzantine(1, ProofForger())
        result = run_consensus(
            FastRobust(_FR), 3, 3, faults=faults, deadline=60_000
        )
        assert result.all_decided
