"""Disk Paxos baseline: 4+ delays, n >= f+1, m >= 2fM+1."""

import pytest

from repro import DiskPaxos, DiskPaxosConfig, FaultPlan, JitteredSynchrony, run_consensus
from repro.consensus.omega import crash_aware_omega, leader_schedule
from repro.core.cluster import Cluster, ClusterConfig


class TestCommonCase:
    def test_established_leader_takes_four_delays(self):
        result = run_consensus(DiskPaxos(), 3, 3)
        assert result.all_decided and result.agreed and result.valid
        assert result.earliest_decision_delay == 4.0

    def test_never_faster_than_four_delays(self):
        # The confirming read is unavoidable: the paper's Section 6 point.
        for seed in range(5):
            result = run_consensus(DiskPaxos(), 3, 3, seed=seed)
            assert result.earliest_decision_delay >= 4.0

    def test_unestablished_leader_takes_eight_delays(self):
        config = DiskPaxosConfig(established_leader=None)
        result = run_consensus(DiskPaxos(config), 3, 3)
        assert result.earliest_decision_delay == 8.0

    def test_single_process_cluster(self):
        # n >= f_P + 1 resilience: works even with one process.
        result = run_consensus(DiskPaxos(), 1, 3)
        assert result.all_decided
        assert result.earliest_decision_delay == 4.0


class TestResilience:
    def test_survives_all_but_one_process(self):
        config = ClusterConfig(n_processes=3, n_memories=3, deadline=5000)
        faults = FaultPlan().crash_process(0, at=1.0).crash_process(1, at=1.0)
        cluster = Cluster(DiskPaxos(), config, faults)
        cluster.kernel.omega = crash_aware_omega(cluster.kernel)
        result = cluster.run(["a", "b", "c"])
        assert result.all_decided and result.agreed

    def test_survives_memory_minority_crash(self):
        faults = FaultPlan().crash_memory(0, at=0.0)
        result = run_consensus(DiskPaxos(), 3, 3, faults=faults, deadline=3000)
        assert result.all_decided and result.agreed
        assert result.earliest_decision_delay == 4.0

    def test_memory_majority_crash_blocks(self):
        faults = FaultPlan().crash_memory(0, at=0.0).crash_memory(1, at=0.0)
        result = run_consensus(DiskPaxos(), 3, 3, faults=faults, deadline=500)
        assert not result.all_decided

    def test_five_memories_two_crashes(self):
        faults = FaultPlan().crash_memory(1, at=0.0).crash_memory(3, at=0.0)
        result = run_consensus(DiskPaxos(), 3, 5, faults=faults, deadline=3000)
        assert result.all_decided and result.agreed


class TestContention:
    def test_contending_leaders_stay_safe(self):
        schedule = [(0.0, 0), (2.0, 1), (30.0, 0), (60.0, 1)]
        result = run_consensus(
            DiskPaxos(), 3, 3, omega=leader_schedule(schedule), deadline=5000
        )
        assert result.agreed and result.valid

    @pytest.mark.parametrize("seed", [1, 7, 21])
    def test_safe_under_jitter(self, seed):
        result = run_consensus(
            DiskPaxos(), 3, 3, latency=JitteredSynchrony(0.7), seed=seed,
            deadline=5000,
        )
        assert result.agreed and result.valid

    def test_value_adoption_across_leaders(self):
        """A second leader must adopt the first leader's possibly-decided
        value, not its own input."""
        config = ClusterConfig(
            n_processes=2, n_memories=3,
            omega=leader_schedule([(0.0, 0), (10.0, 1)]),
            deadline=5000,
        )
        cluster = Cluster(DiskPaxos(), config)
        result = cluster.run(["FIRST", "second"])
        assert result.agreed
        assert result.decided_values == {"FIRST"}
