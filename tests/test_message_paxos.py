"""Classic message-passing Paxos baseline."""

import pytest

from repro import (
    FaultPlan,
    JitteredSynchrony,
    MessagePaxos,
    PartialSynchrony,
    crash_aware_omega,
    run_consensus,
)
from repro.consensus.ballots import Ballot
from repro.core.cluster import Cluster, ClusterConfig
from repro.types import ProcessId


class TestCommonCase:
    def test_decides_in_four_delays(self):
        result = run_consensus(MessagePaxos(), n_processes=3, n_memories=0)
        assert result.all_decided and result.agreed and result.valid
        assert result.earliest_decision_delay == 4.0

    def test_needs_no_memories(self):
        result = run_consensus(MessagePaxos(), n_processes=5, n_memories=0)
        assert result.all_decided

    def test_leader_value_wins(self):
        result = run_consensus(
            MessagePaxos(), 3, 0, inputs=["L", "x", "y"]
        )
        assert result.decided_values == {"L"}

    def test_various_cluster_sizes(self):
        for n in (2, 3, 4, 5, 7):
            result = run_consensus(MessagePaxos(), n, 0, deadline=3000)
            assert result.all_decided and result.agreed, f"n={n}"


class TestFaultTolerance:
    def test_tolerates_minority_crashes(self):
        faults = FaultPlan().crash_process(1, at=0.0).crash_process(2, at=0.0)
        result = run_consensus(MessagePaxos(), 5, 0, faults=faults, deadline=3000)
        assert result.all_decided and result.agreed

    def test_leader_crash_failover(self):
        config = ClusterConfig(n_processes=3, n_memories=0, deadline=3000)
        faults = FaultPlan().crash_process(0, at=1.0)
        cluster = Cluster(MessagePaxos(), config, faults)
        cluster.kernel.omega = crash_aware_omega(cluster.kernel)
        result = cluster.run(["a", "b", "c"])
        assert result.all_decided and result.agreed
        assert result.decided_values <= {"b", "c"}

    def test_majority_crash_blocks(self):
        faults = FaultPlan().crash_process(1, at=0.0).crash_process(2, at=0.0)
        result = run_consensus(MessagePaxos(), 3, 0, faults=faults, deadline=500)
        assert not result.all_decided  # quorum unavailable: must not decide

    def test_mid_run_crash_of_acceptor(self):
        faults = FaultPlan().crash_process(2, at=2.5)
        result = run_consensus(MessagePaxos(), 5, 0, faults=faults, deadline=3000)
        assert result.all_decided and result.agreed


class TestAsynchrony:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_safe_under_jitter(self, seed):
        result = run_consensus(
            MessagePaxos(), 3, 0, latency=JitteredSynchrony(0.5), seed=seed,
            deadline=3000,
        )
        assert result.agreed and result.valid

    @pytest.mark.parametrize("seed", [10, 11, 12])
    def test_safe_and_live_under_partial_synchrony(self, seed):
        result = run_consensus(
            MessagePaxos(), 3, 0,
            latency=PartialSynchrony(gst=60, chaos=15), seed=seed,
            deadline=20_000,
        )
        assert result.agreed and result.valid
        assert result.all_decided

    def test_dueling_leaders_remain_safe(self):
        # Ω flaps between two leaders; progress may suffer but never safety.
        from repro.consensus.omega import leader_schedule

        schedule = [(float(t), t % 2) for t in range(0, 200, 10)]
        result = run_consensus(
            MessagePaxos(), 3, 0, omega=leader_schedule(schedule),
            deadline=5000,
        )
        assert result.agreed or not result.decided_values


class TestBallots:
    def test_ordering(self):
        assert Ballot(1, 0) < Ballot(1, 1) < Ballot(2, 0)

    def test_zero_below_everything(self):
        assert Ballot.zero() < Ballot.initial(ProcessId(0))

    def test_next_for(self):
        nxt = Ballot(3, 1).next_for(ProcessId(0))
        assert nxt == Ballot(4, 0)
        assert nxt > Ballot(3, 1)

    def test_initial(self):
        assert Ballot.initial(ProcessId(2)) == Ballot(1, 2)
