"""Kernel memory-operation semantics: delays, futures, crash-hang,
one-outstanding enforcement."""

import pytest

from repro.errors import OutstandingOpError
from repro.mem.operations import ReadOp, WriteOp
from repro.types import BOTTOM, MemoryId, ProcessId, is_bottom

from tests.conftest import env_of, make_kernel, run_single


class TestDelayAccounting:
    def test_memory_op_takes_two_delays(self, kernel):
        env = env_of(kernel, 0)

        def gen():
            result = yield from env.write(0, "r", ("x", "a"), 1)
            assert result.ok
            return env.now

        task = run_single(kernel, 0, gen())
        assert task.result == 2.0

    def test_parallel_ops_overlap(self, kernel):
        env = env_of(kernel, 0)

        def gen():
            futures = yield from env.invoke_on_all(
                lambda mid: WriteOp("r", ("x", "k"), int(mid))
            )
            yield env.wait(futures, count=len(futures))
            return env.now

        task = run_single(kernel, 0, gen())
        assert task.result == 2.0  # all three writes in parallel

    def test_sequential_ops_accumulate(self, kernel):
        env = env_of(kernel, 0)

        def gen():
            yield from env.write(0, "r", ("x", "a"), 1)
            yield from env.read(0, "r", ("x", "a"))
            return env.now

        task = run_single(kernel, 0, gen())
        assert task.result == 4.0


class TestFutures:
    def test_write_then_read_roundtrip(self, kernel):
        env = env_of(kernel, 0)

        def gen():
            yield from env.write(1, "r", ("x", "key"), {"deep": [1, 2]})
            result = yield from env.read(1, "r", ("x", "key"))
            return result.value

        task = run_single(kernel, 0, gen())
        assert task.result == {"deep": [1, 2]}

    def test_read_unwritten_returns_bottom(self, kernel):
        env = env_of(kernel, 0)

        def gen():
            result = yield from env.read(0, "r", ("x", "nothing"))
            return result.value

        task = run_single(kernel, 0, gen())
        assert is_bottom(task.result)

    def test_wait_count_majority(self, kernel):
        env = env_of(kernel, 0)

        def gen():
            futures = yield from env.invoke_on_all(
                lambda mid: WriteOp("r", ("x", "k"), 0)
            )
            satisfied = yield env.wait(futures, count=2)
            return (satisfied, sum(1 for f in futures if f.done))

        task = run_single(kernel, 0, gen())
        satisfied, done = task.result
        assert satisfied
        assert done >= 2

    def test_wait_timeout(self, kernel):
        kernel.crash_memory(MemoryId(0))
        env = env_of(kernel, 0)

        def gen():
            future = yield env.invoke(0, ReadOp("r", ("x", "k")))
            satisfied = yield env.wait((future,), count=1, timeout=5.0)
            return (satisfied, env.now)

        task = run_single(kernel, 0, gen())
        assert task.result == (False, 5.0)


class TestCrashedMemory:
    def test_op_on_crashed_memory_hangs(self, kernel):
        kernel.crash_memory(MemoryId(1))
        env = env_of(kernel, 0)

        def gen():
            future = yield env.invoke(1, WriteOp("r", ("x", "k"), 1))
            yield env.sleep(50.0)
            return future.done

        task = run_single(kernel, 0, gen())
        assert task.result is False

    def test_majority_still_completes(self, kernel):
        kernel.crash_memory(MemoryId(2))
        env = env_of(kernel, 0)

        def gen():
            futures = yield from env.invoke_on_all(
                lambda mid: WriteOp("r", ("x", "k"), 7)
            )
            yield env.wait(futures, count=2)
            return sorted(int(f.mid) for f in futures if f.done)

        task = run_single(kernel, 0, gen())
        assert task.result == [0, 1]

    def test_crash_after_response_in_flight_still_delivers(self, kernel):
        # The response left the memory before the crash: it arrives.
        env = env_of(kernel, 0)

        def gen():
            future = yield env.invoke(0, WriteOp("r", ("x", "k"), 1))
            yield env.wait((future,), count=1, timeout=20.0)
            return future.ok

        kernel.call_at(1.5, lambda: kernel.crash_memory(MemoryId(0)))
        task = run_single(kernel, 0, gen())
        assert task.result is True


class TestOutstandingRule:
    def test_strict_mode_rejects_second_op_same_memory(self):
        kernel = make_kernel(strict_outstanding=True)
        env = env_of(kernel, 0)

        def gen():
            yield env.invoke(0, ReadOp("r", ("x", "a")))
            yield env.invoke(0, ReadOp("r", ("x", "b")))  # same memory: boom

        kernel.spawn(0, "g", gen())
        with pytest.raises(OutstandingOpError):
            kernel.run(until=10)

    def test_strict_mode_allows_parallel_across_memories(self):
        kernel = make_kernel(strict_outstanding=True)
        env = env_of(kernel, 0)

        def gen():
            futures = []
            for mid in env.memories:
                futures.append((yield env.invoke(mid, ReadOp("r", ("x", "a")))))
            yield env.wait(futures, count=len(futures))
            return True

        task = run_single(kernel, 0, gen())
        assert task.result is True

    def test_strict_mode_allows_sequential_reuse(self):
        kernel = make_kernel(strict_outstanding=True)
        env = env_of(kernel, 0)

        def gen():
            yield from env.write(0, "r", ("x", "a"), 1)
            yield from env.write(0, "r", ("x", "a"), 2)
            return True

        task = run_single(kernel, 0, gen())
        assert task.result is True

    def test_default_mode_is_permissive(self, kernel):
        env = env_of(kernel, 0)

        def gen():
            first = yield env.invoke(0, ReadOp("r", ("x", "a")))
            second = yield env.invoke(0, ReadOp("r", ("x", "b")))
            yield env.wait((first, second), count=2)
            return True

        task = run_single(kernel, 0, gen())
        assert task.result is True


class TestGates:
    def test_gate_wait_and_signal(self, kernel):
        env = env_of(kernel, 0)
        gate = env.new_gate("g")
        order = []

        def waiter():
            yield env.gate_wait(gate)
            order.append(("woke", env.now))

        def signaller():
            yield env.sleep(3.0)
            env.signal(gate)
            order.append(("signalled", env.now))

        kernel.spawn(0, "w", waiter())
        kernel.spawn(0, "s", signaller())
        kernel.run(until=100)
        assert ("signalled", 3.0) in order
        assert ("woke", 3.0) in order

    def test_gate_wait_timeout(self, kernel):
        env = env_of(kernel, 0)
        gate = env.new_gate("never")

        def waiter():
            arrived = yield env.gate_wait(gate, timeout=4.0)
            return (arrived, env.now)

        task = run_single(kernel, 0, waiter())
        assert task.result == (False, 4.0)

    def test_set_gate_admits_immediately(self, kernel):
        env = env_of(kernel, 0)
        gate = env.new_gate("pre-set")
        gate.set()

        def waiter():
            arrived = yield env.gate_wait(gate, timeout=100.0)
            return (arrived, env.now)

        task = run_single(kernel, 0, waiter())
        assert task.result == (True, 0.0)
