"""Signatures: unforgeability, canonical encoding, verification."""

import enum

import pytest
from hypothesis import given, strategies as st

from repro.crypto.signatures import (
    SignatureAuthority,
    Signed,
    canonical_bytes,
)
from repro.errors import SignatureError
from repro.types import BOTTOM, ProcessId


@pytest.fixture
def authority():
    return SignatureAuthority(seed=1)


class TestSigning:
    def test_sign_and_verify(self, authority):
        key = authority.key_for(ProcessId(0))
        signed = authority.sign(key, ("hello", 1))
        assert authority.verify(ProcessId(0), signed)
        assert authority.valid(signed)

    def test_wrong_signer_rejected(self, authority):
        key = authority.key_for(ProcessId(0))
        signed = authority.sign(key, "payload")
        assert not authority.verify(ProcessId(1), signed)

    def test_tampered_payload_rejected(self, authority):
        key = authority.key_for(ProcessId(0))
        signed = authority.sign(key, "original")
        forged = Signed("tampered", signed.signature)
        assert not authority.verify(ProcessId(0), forged)

    def test_cross_signer_tag_reuse_rejected(self, authority):
        # p1's tag on a payload does not validate as p2's signature.
        key0 = authority.key_for(ProcessId(0))
        signed = authority.sign(key0, "payload")
        from repro.crypto.signatures import Signature

        forged = Signed("payload", Signature(ProcessId(1), signed.signature.tag))
        assert not authority.verify(ProcessId(1), forged)

    def test_non_signed_objects_rejected(self, authority):
        assert not authority.verify(ProcessId(0), "not-signed")
        assert not authority.verify(ProcessId(0), None)
        assert not authority.valid(42)

    def test_key_is_stable(self, authority):
        assert authority.key_for(ProcessId(0)) is authority.key_for(ProcessId(0))

    def test_foreign_authority_key_rejected(self, authority):
        other = SignatureAuthority(seed=2)
        foreign_key = other.key_for(ProcessId(0))
        with pytest.raises(SignatureError):
            authority.sign(foreign_key, "x")

    def test_different_seeds_different_tags(self):
        a = SignatureAuthority(seed=1)
        b = SignatureAuthority(seed=2)
        sa = a.sign(a.key_for(ProcessId(0)), "x")
        sb = b.sign(b.key_for(ProcessId(0)), "x")
        assert sa.signature.tag != sb.signature.tag

    def test_sign_count(self, authority):
        key = authority.key_for(ProcessId(0))
        authority.sign(key, 1)
        authority.sign(key, 2)
        assert authority.sign_count == 2

    def test_nested_signed_payloads(self, authority):
        # Cheap Quorum signs signed values (copies of the leader's value).
        leader = authority.key_for(ProcessId(0))
        follower = authority.key_for(ProcessId(1))
        inner = authority.sign(leader, "decision")
        outer = authority.sign(follower, inner)
        assert authority.verify(ProcessId(1), outer)
        assert authority.verify(ProcessId(0), outer.payload)


class _Color(enum.Enum):
    RED = 1
    BLUE = 2


class TestCanonicalBytes:
    def test_primitives(self):
        for value in (None, True, False, 0, -5, 3.5, "s", b"b", BOTTOM):
            assert canonical_bytes(value) == canonical_bytes(value)

    def test_bool_int_distinct(self):
        assert canonical_bytes(True) != canonical_bytes(1)
        assert canonical_bytes(False) != canonical_bytes(0)

    def test_dict_order_irrelevant(self):
        assert canonical_bytes({"a": 1, "b": 2}) == canonical_bytes({"b": 2, "a": 1})

    def test_set_order_irrelevant(self):
        assert canonical_bytes({3, 1, 2}) == canonical_bytes({1, 2, 3})

    def test_tuple_vs_nested_distinct(self):
        assert canonical_bytes((1, 2, 3)) != canonical_bytes((1, (2, 3)))

    def test_string_length_framing(self):
        # "ab" + "c" must not collide with "a" + "bc".
        assert canonical_bytes(("ab", "c")) != canonical_bytes(("a", "bc"))

    def test_enum_support(self):
        assert canonical_bytes(_Color.RED) != canonical_bytes(_Color.BLUE)

    def test_unencodable_raises(self):
        with pytest.raises(TypeError):
            canonical_bytes(object())

    @given(
        st.recursive(
            st.none()
            | st.booleans()
            | st.integers()
            | st.text(max_size=20)
            | st.binary(max_size=20),
            lambda children: st.lists(children, max_size=4).map(tuple)
            | st.dictionaries(st.text(max_size=5), children, max_size=4),
            max_leaves=20,
        )
    )
    def test_deterministic_for_arbitrary_values(self, value):
        assert canonical_bytes(value) == canonical_bytes(value)

    @given(st.integers(), st.integers())
    def test_distinct_ints_distinct_encodings(self, a, b):
        if a != b:
            assert canonical_bytes(a) != canonical_bytes(b)
