"""Unit coverage for the reconfiguration vocabulary and its parts:
epoch folding, the fence policy, the autoscaler policy, the config log."""

import pytest

from repro.errors import ConfigurationError
from repro.mem.permissions import Permission, epoch_fence_policy
from repro.metrics.ledger import MetricsLedger
from repro.reconfig import (
    ActivateEpoch,
    AddReplica,
    Autoscaler,
    AutoscalerConfig,
    ConfigState,
    MergeShard,
    MoveLeader,
    RemoveReplica,
    SealShard,
    SplitShard,
)
from repro.types import ProcessId


class TestConfigStateFold:
    def make(self, n_shards=2, n_processes=3, replicas=None):
        return ConfigState(
            n_shards, n_processes, tuple(range(n_processes)) if replicas is None else replicas
        )

    def test_epoch_zero_matches_static_layout(self):
        state = self.make(n_shards=4, n_processes=3)
        epoch = state.active_epoch
        assert epoch.number == 0 and epoch.active
        assert epoch.shards == (0, 1, 2, 3)
        assert epoch.leaders == {0: 0, 1: 1, 2: 2, 3: 0}

    def test_split_allocates_fresh_id_and_balances_leaders(self):
        state = self.make()
        epoch = state.apply(SplitShard())
        assert epoch.number == 1 and not epoch.active
        assert epoch.shards == (0, 1, 2)
        # p3 leads nothing at epoch 0 -> least-loaded gets the new shard
        assert epoch.leaders[2] == 2
        assert epoch.migration_sources == (0, 1)
        assert state.next_shard_id == 3

    def test_merge_retires_and_records_the_deposed_leader(self):
        state = self.make(n_shards=3)
        epoch = state.apply(MergeShard(1))
        assert epoch.shards == (0, 2)
        assert epoch.retired == (1,)
        assert epoch.migration_sources == (1,)
        assert epoch.deposed == ((1, 1),)
        assert 1 not in epoch.leaders

    def test_shard_ids_never_recycle_after_merge(self):
        state = self.make(n_shards=3)
        state.apply(MergeShard(2))
        epoch = state.apply(SplitShard())
        assert epoch.shards == (0, 1, 3)  # id 2 stays retired forever

    def test_move_leader(self):
        state = self.make()
        epoch = state.apply(MoveLeader(0, 2))
        assert epoch.leaders[0] == 2
        assert epoch.deposed == ((0, 0),)
        assert epoch.migration_sources == ()

    def test_replica_swap_reassigns_led_shards(self):
        state = self.make(n_shards=2, n_processes=4, replicas=(0, 1, 2))
        added = state.apply(AddReplica(3))
        assert added.replicas == (0, 1, 2, 3)
        removed = state.apply(RemoveReplica(1))
        assert removed.replicas == (0, 2, 3)
        assert (1, 1) in removed.deposed
        assert removed.leaders[1] in (2, 3)  # reassigned off the leaver

    def test_seal_and_activate_fold_in_place(self):
        state = self.make()
        epoch = state.apply(SplitShard())
        assert state.apply(SealShard(epoch.number, 0)) is None
        assert 0 in epoch.sealed
        assert state.apply(ActivateEpoch(epoch.number)) is None
        assert state.active_epoch is epoch and epoch.active

    def test_activation_must_be_in_order(self):
        state = self.make()
        state.apply(SplitShard())
        second = state.apply(SplitShard())
        state.apply(ActivateEpoch(second.number))  # out of order: rejected
        assert state.active_epoch.number == 0
        assert state.rejected and "not the next pending" in state.rejected[-1][1]

    def test_invalid_commands_fold_to_recorded_rejections(self):
        state = self.make()
        assert state.apply(MergeShard(7)) is None
        assert state.apply(MoveLeader(0, 9)) is None
        assert state.apply(AddReplica(1)) is None
        assert state.apply(RemoveReplica(9)) is None
        assert len(state.rejected) == 4
        assert state.latest.number == 0  # nothing opened an epoch

    def test_cannot_remove_last_replica_or_merge_last_shard(self):
        state = ConfigState(1, 1, (0,))
        assert state.check(RemoveReplica(0)) is not None
        assert state.check(MergeShard(0)) is not None

    def test_max_shards_bounds_splits_in_the_fold(self):
        state = ConfigState(2, 3, (0, 1, 2), max_shards=3)
        assert state.apply(SplitShard()) is not None  # 2 -> 3 fits
        assert state.apply(SplitShard()) is None  # 3 -> 4 bounces
        assert "max_shards" in state.rejected[-1][1]
        # a merge frees headroom again
        assert state.check(MergeShard(0)) is None


class TestEpochFencePolicy:
    def setup_method(self):
        self.processes = range(3)
        self.policy = epoch_fence_policy(self.processes)
        self.tombstone = Permission()

    def test_exclusive_grants_are_legal_for_any_requester(self):
        old = Permission.exclusive_writer(0, self.processes)
        new = Permission.exclusive_writer(2, self.processes)
        assert self.policy(ProcessId(2), old, new)  # self-grab
        assert self.policy(ProcessId(1), old, new)  # coordinator grant

    def test_malformed_shapes_are_illegal(self):
        old = Permission.exclusive_writer(0, self.processes)
        assert not self.policy(ProcessId(0), old, Permission.open(self.processes))
        assert not self.policy(ProcessId(0), old, Permission.read_only(self.processes))
        outsider = Permission.exclusive_writer(7, range(8))
        assert not self.policy(ProcessId(0), old, outsider)

    def test_retirement_is_sticky(self):
        old = Permission.exclusive_writer(1, self.processes)
        assert self.policy(ProcessId(0), old, self.tombstone)  # retire: legal
        grab = Permission.exclusive_writer(1, self.processes)
        assert not self.policy(ProcessId(1), self.tombstone, grab)  # no way back
        assert self.policy(ProcessId(1), self.tombstone, self.tombstone)

    def test_dormant_read_only_region_is_grabbable(self):
        dormant = Permission.read_only(self.processes)
        grab = Permission.exclusive_writer(2, self.processes)
        assert self.policy(ProcessId(2), dormant, grab)

    def test_non_retirable_region_rejects_the_tombstone(self):
        # the config log's own region must never be brickable — a
        # scripted-adversarial tombstone against "cfg" is just illegal
        policy = epoch_fence_policy(self.processes, retirable=False)
        old = Permission.exclusive_writer(0, self.processes)
        assert not policy(ProcessId(0), old, self.tombstone)
        assert not policy(ProcessId(2), old, self.tombstone)
        grab = Permission.exclusive_writer(1, self.processes)
        assert policy(ProcessId(1), old, grab)  # leadership still moves


class TestAutoscaler:
    def tick(self, policy, ledger, now, shards=(0, 1), pending=False):
        return policy.observe(now, ledger, shards, pending)

    def test_first_tick_only_baselines(self):
        policy = Autoscaler(AutoscalerConfig(split_above=1.0, cooldown=0.0))
        ledger = MetricsLedger()
        ledger.count_shard_commit(0, 100)
        assert self.tick(policy, ledger, 100.0) == []

    def test_hot_shard_triggers_split(self):
        policy = Autoscaler(AutoscalerConfig(split_above=50.0, cooldown=0.0))
        ledger = MetricsLedger()
        self.tick(policy, ledger, 100.0)
        ledger.count_shard_commit(0, 30)  # 300/ktime over the window
        proposals = self.tick(policy, ledger, 200.0)
        assert len(proposals) == 1
        assert isinstance(proposals[0], SplitShard)
        assert proposals[0].hot_shard == 0

    def test_p99_triggers_split(self):
        policy = Autoscaler(
            AutoscalerConfig(split_above=float("inf"), p99_above=40.0, cooldown=0.0)
        )
        ledger = MetricsLedger()
        self.tick(policy, ledger, 100.0)
        for i in range(50):
            ledger.record_shard_latency(1, 150.0, 90.0)
        proposals = self.tick(policy, ledger, 200.0)
        assert proposals and proposals[0].hot_shard == 1

    def test_cold_service_triggers_merge(self):
        policy = Autoscaler(
            AutoscalerConfig(split_above=float("inf"), merge_below=5.0,
                             min_shards=1, cooldown=0.0)
        )
        ledger = MetricsLedger()
        self.tick(policy, ledger, 100.0)
        proposals = self.tick(policy, ledger, 200.0)  # zero traffic
        assert proposals and isinstance(proposals[0], MergeShard)

    def test_pending_reconfig_and_cooldown_mute_the_policy(self):
        policy = Autoscaler(AutoscalerConfig(split_above=1.0, cooldown=500.0))
        ledger = MetricsLedger()
        self.tick(policy, ledger, 100.0)
        ledger.count_shard_commit(0, 500)
        assert self.tick(policy, ledger, 200.0, pending=True) == []
        ledger.count_shard_commit(0, 500)
        assert self.tick(policy, ledger, 300.0) != []  # fires once...
        ledger.count_shard_commit(0, 500)
        assert self.tick(policy, ledger, 400.0) == []  # ...then cools down

    def test_max_shards_is_a_ceiling(self):
        policy = Autoscaler(AutoscalerConfig(split_above=1.0, max_shards=2, cooldown=0.0))
        ledger = MetricsLedger()
        self.tick(policy, ledger, 100.0)
        ledger.count_shard_commit(0, 500)
        assert self.tick(policy, ledger, 200.0) == []


class TestElasticConfigValidation:
    def test_bft_shards_rejected(self):
        from repro import ElasticConfig

        with pytest.raises(ConfigurationError):
            ElasticConfig(n_shards=2, bft_shards=(1,))

    def test_replicas_validated(self):
        from repro import ElasticConfig

        with pytest.raises(ConfigurationError):
            ElasticConfig(n_processes=3, initial_replicas=(0, 7))
        with pytest.raises(ConfigurationError):
            ElasticConfig(n_shards=4, max_shards=2)
        cfg = ElasticConfig(n_processes=4, initial_replicas=(2, 0))
        assert cfg.initial_replicas == (0, 2)
