"""Permission triples and legalChange policies (paper Section 3)."""

import pytest

from repro.mem.permissions import (
    Permission,
    allow_any_change,
    exclusive_grab_policy,
    revoke_only_policy,
    static_permissions,
)


class TestPermissionAlgebra:
    def test_disjointness_enforced(self):
        with pytest.raises(ValueError):
            Permission(read=frozenset({1}), write=frozenset({1}))
        with pytest.raises(ValueError):
            Permission(read=frozenset({1}), readwrite=frozenset({1}))
        with pytest.raises(ValueError):
            Permission(write=frozenset({2}), readwrite=frozenset({2}))

    def test_can_read(self):
        perm = Permission(read=frozenset({0}), readwrite=frozenset({1}))
        assert perm.can_read(0)
        assert perm.can_read(1)
        assert not perm.can_read(2)

    def test_can_write(self):
        perm = Permission(write=frozenset({0}), readwrite=frozenset({1}))
        assert perm.can_write(0)
        assert perm.can_write(1)
        assert not perm.can_write(2)

    def test_swmr_shape(self):
        # The paper's SWMR: R = P \ {p}, W = empty, RW = {p}.
        perm = Permission.swmr(1, range(4))
        assert perm.readwrite == frozenset({1})
        assert perm.write == frozenset()
        assert perm.read == frozenset({0, 2, 3})
        assert perm.can_write(1) and not perm.can_write(0)
        assert all(perm.can_read(p) for p in range(4))

    def test_exclusive_writer_matches_swmr_shape(self):
        assert Permission.exclusive_writer(0, range(3)) == Permission.swmr(0, range(3))

    def test_read_only(self):
        perm = Permission.read_only(range(3))
        assert all(perm.can_read(p) for p in range(3))
        assert not any(perm.can_write(p) for p in range(3))

    def test_open(self):
        perm = Permission.open(range(2))
        assert perm.can_read(0) and perm.can_write(0)
        assert perm.can_read(1) and perm.can_write(1)

    def test_empty_permission_denies_everyone(self):
        perm = Permission()
        assert not perm.can_read(0)
        assert not perm.can_write(0)


class TestPolicies:
    def test_static_always_false(self):
        old = Permission.open(range(2))
        new = Permission.read_only(range(2))
        assert static_permissions(0, old, new) is False

    def test_allow_any_always_true(self):
        old = Permission.open(range(2))
        assert allow_any_change(0, old, old) is True

    def test_revoke_only_accepts_exact_target(self):
        target = Permission.read_only(range(3))
        policy = revoke_only_policy(target)
        assert policy(2, Permission.exclusive_writer(0, range(3)), target)
        assert not policy(2, Permission.exclusive_writer(0, range(3)),
                          Permission.open(range(3)))

    def test_revoke_only_rejects_regrant(self):
        # Nobody — not even the original leader — can re-grant after revoke.
        target = Permission.read_only(range(3))
        policy = revoke_only_policy(target)
        regrant = Permission.exclusive_writer(0, range(3))
        assert not policy(0, target, regrant)

    def test_exclusive_grab_self_only(self):
        policy = exclusive_grab_policy(range(3))
        old = Permission.exclusive_writer(0, range(3))
        mine = Permission.exclusive_writer(1, range(3))
        theirs = Permission.exclusive_writer(2, range(3))
        assert policy(1, old, mine)
        assert not policy(1, old, theirs)  # cannot hand exclusivity to others

    def test_exclusive_grab_rejects_other_shapes(self):
        policy = exclusive_grab_policy(range(3))
        old = Permission.exclusive_writer(0, range(3))
        assert not policy(1, old, Permission.open(range(3)))
        assert not policy(1, old, Permission.read_only(range(3)))
