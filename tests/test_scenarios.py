"""The canned scenario builders."""

import pytest

from repro import FastRobust, ProtectedMemoryPaxos, SilentByzantine
from repro.core import scenarios


class TestScenarioBuilders:
    def test_common_case(self):
        cluster = scenarios.common_case(ProtectedMemoryPaxos())
        result = cluster.run(["a", "b", "c"])
        assert result.all_decided and result.earliest_decision_delay == 2.0

    def test_leader_crash(self):
        cluster = scenarios.leader_crash(ProtectedMemoryPaxos())
        result = cluster.run(["a", "b", "c"])
        assert result.all_decided and result.agreed

    def test_memory_minority_crash(self):
        cluster = scenarios.memory_minority_crash(ProtectedMemoryPaxos(), n_memories=5)
        result = cluster.run(["a", "b", "c"])
        assert result.all_decided
        assert result.earliest_decision_delay == 2.0

    def test_byzantine_seat(self):
        cluster = scenarios.byzantine_seat(SilentByzantine(), seat=2)
        result = cluster.run(["a", "b", "c"])
        assert result.all_decided and result.agreed

    def test_mixed_agent_crashes(self):
        cluster = scenarios.mixed_agent_crashes([1], [0])
        result = cluster.run(["a", "b", "c"])
        assert result.all_decided and result.agreed

    def test_asynchronous_period(self):
        cluster = scenarios.asynchronous_period(ProtectedMemoryPaxos(), seed=3)
        result = cluster.run(["a", "b", "c"])
        assert result.agreed and result.valid
        assert result.all_decided
