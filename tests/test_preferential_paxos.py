"""Preferential Paxos (Algorithm 8): priority-respecting decisions."""

import pytest

from repro.broadcast.nonequivocating import neb_regions
from repro.consensus.base import ConsensusProtocol
from repro.consensus.messages import SetupValue
from repro.consensus.preferential_paxos import (
    PRIORITY_BARE,
    PRIORITY_LEADER_SIGNED,
    PRIORITY_PROOF,
    PreferentialPaxosConfig,
    PreferentialPaxosNode,
    effective_priority,
)
from repro.core.cluster import Cluster, ClusterConfig
from repro.crypto.proofs import assemble_proof
from repro.trusted.transport import TrustedTransport
from repro.trusted.validators import PaxosConformance
from repro.types import ProcessId

from tests.conftest import env_of, make_kernel


class _PpProtocol(ConsensusProtocol):
    """Preferential Paxos with per-process SetupValue inputs."""

    name = "pp-test"

    def __init__(self, setup_values):
        self.setup_values = setup_values

    def regions(self, n, m):
        return neb_regions(range(n))

    def tasks(self, env, value):
        sv = self.setup_values[int(env.pid)]
        transport = TrustedTransport(
            env, validator=PaxosConformance(env.n_processes // 2 + 1)
        )
        node = PreferentialPaxosNode(env, transport, sv)
        return [
            ("neb", transport.neb.delivery_daemon()),
            ("pp-pump", node.pump()),
            ("pp-run", node.run()),
        ]


def _run_pp(setup_values, n=3, m=3, deadline=8000):
    cluster = Cluster(
        _PpProtocol(setup_values),
        ClusterConfig(n_processes=n, n_memories=m, deadline=deadline),
    )
    return cluster.run([sv.value for sv in setup_values])


class TestPriorityDecision:
    def test_all_bare_inputs_agree(self):
        svs = [SetupValue(f"v{p}", PRIORITY_BARE) for p in range(3)]
        result = _run_pp(svs)
        assert result.all_decided and result.agreed
        assert result.decided_values <= {"v0", "v1", "v2"}

    def test_leader_signed_beats_bare(self):
        kernel = make_kernel(regions=neb_regions(range(3)))
        leader_env = env_of(kernel, 0)
        cert = leader_env.sign("premium")
        svs = [
            SetupValue("premium", PRIORITY_LEADER_SIGNED, cert),
            SetupValue("plain-1", PRIORITY_BARE),
            SetupValue("plain-2", PRIORITY_BARE),
        ]
        # Reuse the same kernel seedings (authority derives from seed=0) so
        # the certificate verifies inside the fresh cluster.
        result = _run_pp(svs)
        assert result.agreed
        assert result.decided_values == {"premium"}

    def test_decision_within_top_f_plus_1_priorities(self):
        """Lemma 4.7 exactly: with n=3, f=1, the decision is one of the top
        f+1 = 2 priority inputs — the bare value can never win against a
        proof and a leader signature."""
        kernel = make_kernel(regions=neb_regions(range(3)))
        envs = [env_of(kernel, p) for p in range(3)]
        inner = envs[0].sign("gold")
        copies = tuple(env.sign(inner) for env in envs)
        proof = assemble_proof(envs[1].authority, envs[1].key, inner, copies)
        decoy_cert = envs[0].sign("silver")
        svs = [
            SetupValue("silver", PRIORITY_LEADER_SIGNED, decoy_cert),
            SetupValue("gold", PRIORITY_PROOF, proof),
            SetupValue("plain", PRIORITY_BARE),
        ]
        result = _run_pp(svs)
        assert result.agreed
        assert result.decided_values <= {"gold", "silver"}
        assert "plain" not in result.decided_values

    def test_unanimity_proof_majority_forces_decision(self):
        """The composition scenario (Lemma 4.8 case 1): f+1 processes carry
        proofs for the same value — that value is the only possible
        decision."""
        kernel = make_kernel(regions=neb_regions(range(3)))
        envs = [env_of(kernel, p) for p in range(3)]
        inner = envs[0].sign("gold")
        copies = tuple(env.sign(inner) for env in envs)
        proof_1 = assemble_proof(envs[1].authority, envs[1].key, inner, copies)
        proof_2 = assemble_proof(envs[2].authority, envs[2].key, inner, copies)
        svs = [
            SetupValue("plain", PRIORITY_BARE),
            SetupValue("gold", PRIORITY_PROOF, proof_1),
            SetupValue("gold", PRIORITY_PROOF, proof_2),
        ]
        result = _run_pp(svs)
        assert result.agreed
        assert result.decided_values == {"gold"}

    def test_forged_priority_tag_is_demoted(self):
        """A liar tags its value as proof-class without a certificate; every
        receiver demotes it, so it cannot outrank honest certified values."""
        kernel = make_kernel(regions=neb_regions(range(3)))
        leader_env = env_of(kernel, 0)
        cert = leader_env.sign("honest")
        svs = [
            SetupValue("honest", PRIORITY_LEADER_SIGNED, cert),
            SetupValue("fake-gold", PRIORITY_PROOF, None),  # no certificate
            SetupValue("plain", PRIORITY_BARE),
        ]
        result = _run_pp(svs)
        assert result.agreed
        assert result.decided_values == {"honest"}


class TestEffectivePriority:
    def test_bare_is_bare(self):
        env = env_of(make_kernel(), 0)
        sv = SetupValue("x", PRIORITY_BARE)
        assert effective_priority(env, sv, ProcessId(0), 3) == PRIORITY_BARE

    def test_valid_leader_cert(self):
        env = env_of(make_kernel(), 0)
        cert = env.sign("x")
        sv = SetupValue("x", PRIORITY_LEADER_SIGNED, cert)
        assert (
            effective_priority(env, sv, ProcessId(0), 3) == PRIORITY_LEADER_SIGNED
        )

    def test_cert_for_other_value_demoted(self):
        env = env_of(make_kernel(), 0)
        cert = env.sign("different")
        sv = SetupValue("x", PRIORITY_LEADER_SIGNED, cert)
        assert effective_priority(env, sv, ProcessId(0), 3) == PRIORITY_BARE

    def test_cert_from_non_leader_demoted(self):
        kernel = make_kernel()
        env1 = env_of(kernel, 1)
        cert = env1.sign("x")  # signed by p2, not the leader p1
        sv = SetupValue("x", PRIORITY_LEADER_SIGNED, cert)
        env0 = env_of(kernel, 0)
        assert effective_priority(env0, sv, ProcessId(0), 3) == PRIORITY_BARE

    def test_valid_proof_class(self):
        kernel = make_kernel()
        envs = [env_of(kernel, p) for p in range(3)]
        inner = envs[0].sign("v")
        copies = tuple(env.sign(inner) for env in envs)
        proof = assemble_proof(envs[0].authority, envs[0].key, inner, copies)
        sv = SetupValue("v", PRIORITY_PROOF, proof)
        assert effective_priority(envs[1], sv, ProcessId(0), 3) == PRIORITY_PROOF
