"""White-box unit tests for the Fast Paxos node internals."""

import pytest

from repro.consensus.ballots import Ballot
from repro.consensus.base import DirectTransport
from repro.consensus.fast_paxos import FastPaxosConfig, FastPaxosNode
from repro.consensus.messages import FastAccepted, FastPropose, Prepare, Promise
from repro.consensus.paxos import PaxosConfig
from repro.types import ProcessId

from tests.conftest import env_of, make_kernel

B1 = Ballot(1, 0)


def _node(kernel, pid=0, value="v"):
    env = env_of(kernel, pid)
    return FastPaxosNode(env, DirectTransport(env, topic="fp-unit"), value)


def _drive(kernel, gen):
    task = kernel.spawn(0, "drive", gen)
    kernel.run(until=100)
    return task


class TestFastRound:
    def test_first_fast_propose_accepted(self, kernel):
        node = _node(kernel)
        _drive(kernel, node._on_fast_propose(FastPropose("a")))
        assert node.state.has_fast_accepted
        assert node.state.fast_accepted == "a"

    def test_second_fast_propose_ignored(self, kernel):
        node = _node(kernel)
        _drive(kernel, node._on_fast_propose(FastPropose("a")))
        _drive(kernel, node._on_fast_propose(FastPropose("b")))
        assert node.state.fast_accepted == "a"

    def test_fast_accept_blocked_after_classic_promise(self, kernel):
        node = _node(kernel)
        _drive(kernel, node._on_prepare(ProcessId(1), Prepare(B1)))
        _drive(kernel, node._on_fast_propose(FastPropose("late")))
        assert not node.state.has_fast_accepted

    def test_fast_quorum_is_all_n(self, kernel):
        node = _node(kernel)
        node._on_fast_accepted(ProcessId(0), FastAccepted("v"))
        node._on_fast_accepted(ProcessId(1), FastAccepted("v"))
        assert not node.decided  # 2 of 3 is not enough
        node._on_fast_accepted(ProcessId(2), FastAccepted("v"))
        assert node.decided and node.decided_value == "v"

    def test_split_votes_never_fast_decide(self, kernel):
        node = _node(kernel)
        node._on_fast_accepted(ProcessId(0), FastAccepted("a"))
        node._on_fast_accepted(ProcessId(1), FastAccepted("b"))
        node._on_fast_accepted(ProcessId(2), FastAccepted("a"))
        assert not node.decided


class TestRecoveryValueRule:
    def test_unanimous_reports_force_the_value(self, kernel):
        node = _node(kernel, value="own")
        fast_ballot = Ballot(0, 0)
        node.promises[B1] = {
            ProcessId(1): Promise(B1, fast_ballot, "fast-v"),
            ProcessId(2): Promise(B1, fast_ballot, "fast-v"),
        }
        assert node._recovery_value(B1) == "fast-v"

    def test_empty_reports_free_choice(self, kernel):
        node = _node(kernel, value="own")
        node.promises[B1] = {
            ProcessId(1): Promise(B1, None, None),
            ProcessId(2): Promise(B1, None, None),
        }
        assert node._recovery_value(B1) == "own"

    def test_highest_ballot_wins_in_recovery(self, kernel):
        node = _node(kernel, value="own")
        node.promises[B1] = {
            ProcessId(1): Promise(B1, Ballot(0, 0), "fast"),
            ProcessId(2): Promise(B1, Ballot(0, 5), "later-classic"),
        }
        assert node._recovery_value(B1) == "later-classic"


class TestConfigs:
    def test_paxos_quorum_default_majority(self):
        assert PaxosConfig().quorum_for(3) == 2
        assert PaxosConfig().quorum_for(5) == 3
        assert PaxosConfig(quorum=4).quorum_for(5) == 4

    def test_fast_paxos_config_defaults(self):
        config = FastPaxosConfig()
        assert config.recovery_delay > 0
        assert config.round_timeout > 0
