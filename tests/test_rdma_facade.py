"""RDMA facade: protection domains, queue pairs, verbs (Section 7)."""

import pytest

from repro.errors import PermissionError_
from repro.mem.permissions import Permission, revoke_only_policy
from repro.mem.regions import RegionSpec
from repro.rdma.protection_domain import ProtectionDomain
from repro.rdma.queue_pair import QueuePair
from repro.rdma.verbs import RdmaNic
from repro.types import ProcessId, is_bottom

from tests.conftest import env_of, make_kernel, run_single


def _kernel():
    regions = [
        RegionSpec("buf", ("buf",), Permission.swmr(0, range(3))),
        RegionSpec(
            "shared",
            ("shared",),
            Permission.open(range(3)),
        ),
    ]
    return make_kernel(3, 2, regions=regions)


class TestControlPlane:
    def test_alloc_pd_and_register(self):
        kernel = _kernel()
        nic = RdmaNic(env_of(kernel, 0))
        pd = nic.alloc_pd()
        mr = pd.register(0, "buf", ("buf",), access="read-write")
        assert mr.rkey
        assert pd.lookup(mr.rkey) is mr

    def test_deregister_invalidates_rkey(self):
        kernel = _kernel()
        nic = RdmaNic(env_of(kernel, 0))
        pd = nic.alloc_pd()
        mr = pd.register(0, "buf", ("buf",), access="read")
        pd.deregister(mr.rkey)
        assert pd.lookup(mr.rkey) is None
        with pytest.raises(PermissionError_):
            pd.deregister(mr.rkey)

    def test_bad_access_level_rejected(self):
        pd = ProtectionDomain(ProcessId(0))
        with pytest.raises(PermissionError_):
            pd.register(0, "buf", ("buf",), access="execute")

    def test_qp_creation_associates_peer(self):
        kernel = _kernel()
        nic = RdmaNic(env_of(kernel, 0))
        pd = nic.alloc_pd()
        qp = nic.create_qp(pd, ProcessId(1))
        assert pd.peer_allowed(ProcessId(1))
        assert not pd.peer_allowed(ProcessId(2))
        assert qp.domain_id == pd.domain_id

    def test_destroyed_qp_unusable(self):
        qp = QueuePair.create(ProcessId(0), ProcessId(1), 1)
        qp.destroy()
        with pytest.raises(PermissionError_):
            qp.ensure_usable()


class TestOneSidedVerbs:
    def _setup(self):
        kernel = _kernel()
        nic0 = RdmaNic(env_of(kernel, 0))
        nic1 = RdmaNic(env_of(kernel, 1))
        pd = nic0.alloc_pd()
        qp = nic0.create_qp(pd, ProcessId(1))
        return kernel, nic0, nic1, pd, qp

    def test_write_then_remote_read(self):
        kernel, nic0, nic1, pd, qp = self._setup()
        mr = pd.register(0, "shared", ("shared",), access="read-write")

        def gen():
            result = yield from nic0.post_write(qp, mr, ("shared", "x"), 7)
            assert result.ok
            read = yield from nic0.post_read(qp, mr, ("shared", "x"))
            return read.value

        task = run_single(kernel, 0, gen())
        assert task.result == 7

    def test_read_only_registration_blocks_writes(self):
        kernel, nic0, nic1, pd, qp = self._setup()
        mr = pd.register(0, "shared", ("shared",), access="read")

        def gen():
            yield from nic0.post_write(qp, mr, ("shared", "x"), 1)

        with pytest.raises(PermissionError_):
            list(gen())  # the NIC validates locally, before any effect

    def test_stale_rkey_rejected_locally(self):
        kernel, nic0, nic1, pd, qp = self._setup()
        mr = pd.register(0, "shared", ("shared",), access="read")
        pd.deregister(mr.rkey)

        def gen():
            yield from nic0.post_read(qp, pd.lookup(mr.rkey), ("shared", "x"))

        with pytest.raises(PermissionError_):
            list(gen())  # the check is synchronous, before any effect

    def test_memory_side_permission_still_decides(self):
        """A write-capable registration cannot override the memory-side
        permission triple: the op comes back nak, like real RDMA completing
        with a protection error."""
        kernel, nic0, nic1, pd, qp = self._setup()
        nic1_pd = nic1.alloc_pd()
        qp1 = nic1.create_qp(nic1_pd, ProcessId(0))
        mr = nic1_pd.register(0, "buf", ("buf",), access="read-write")

        def gen():
            # p2 writing p1's SWMR buffer: locally allowed, remotely nak'd.
            result = yield from nic1.post_write(qp1, mr, ("buf", "x"), 13)
            return result.ok

        task = run_single(kernel, 1, gen())
        assert task.result is False

    def test_array_read(self):
        kernel, nic0, nic1, pd, qp = self._setup()
        mr = pd.register(0, "shared", ("shared",), access="read-write")

        def gen():
            yield from nic0.post_write(qp, mr, ("shared", "a"), 1)
            yield from nic0.post_write(qp, mr, ("shared", "b"), 2)
            snap = yield from nic0.post_read_array(qp, mr)
            return snap.value

        task = run_single(kernel, 0, gen())
        assert task.result == {("shared", "a"): 1, ("shared", "b"): 2}


class TestTwoSidedVerbs:
    def test_send_recv(self):
        kernel = _kernel()
        nic0 = RdmaNic(env_of(kernel, 0))
        nic1 = RdmaNic(env_of(kernel, 1))
        pd = nic0.alloc_pd()
        qp = nic0.create_qp(pd, ProcessId(1))

        def sender():
            yield from nic0.post_send(qp, {"rpc": "hello"})

        def receiver():
            envelope = yield from nic1.poll_recv(timeout=50)
            return envelope.payload

        kernel.spawn(0, "s", sender())
        task = run_single(kernel, 1, receiver())
        assert task.result == {"rpc": "hello"}
