"""Property-based safety tests: agreement + validity across random
schedules, fault mixes and seeds, for every protocol.

These are the tests the paper's theorems correspond to: safety must hold in
*all* executions (hypothesis explores schedules), while termination is only
asserted under the synchronous/crash-free configurations.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import (
    AlignedConfig,
    AlignedPaxos,
    DiskPaxos,
    FastPaxos,
    FaultPlan,
    JitteredSynchrony,
    MessagePaxos,
    ProtectedMemoryPaxos,
    run_consensus,
)

_PROPERTY_SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _check_safety(result, inputs):
    """Agreement + weak validity; termination not required here."""
    assert not result.metrics.violations
    values = result.decided_values
    assert len(values) <= 1
    assert all(v in inputs for v in values)


class TestCrashProtocolSafety:
    @_PROPERTY_SETTINGS
    @given(seed=st.integers(0, 10_000), jitter=st.floats(0.0, 0.9))
    def test_message_paxos_safe_under_random_jitter(self, seed, jitter):
        inputs = ["a", "b", "c"]
        result = run_consensus(
            MessagePaxos(), 3, 0, inputs=inputs,
            latency=JitteredSynchrony(jitter), seed=seed, deadline=4000,
        )
        _check_safety(result, inputs)

    @_PROPERTY_SETTINGS
    @given(seed=st.integers(0, 10_000), jitter=st.floats(0.0, 0.9))
    def test_pmp_safe_under_random_jitter(self, seed, jitter):
        inputs = ["a", "b", "c"]
        result = run_consensus(
            ProtectedMemoryPaxos(), 3, 3, inputs=inputs,
            latency=JitteredSynchrony(jitter), seed=seed, deadline=4000,
        )
        _check_safety(result, inputs)

    @_PROPERTY_SETTINGS
    @given(seed=st.integers(0, 10_000))
    def test_disk_paxos_safe_and_never_faster_than_4(self, seed):
        inputs = ["a", "b", "c"]
        result = run_consensus(
            DiskPaxos(), 3, 3, inputs=inputs,
            latency=JitteredSynchrony(0.4), seed=seed, deadline=4000,
        )
        _check_safety(result, inputs)
        delay = result.earliest_decision_delay
        if delay is not None:
            assert delay >= 4.0

    @_PROPERTY_SETTINGS
    @given(
        seed=st.integers(0, 10_000),
        crashed=st.sets(st.integers(0, 2), max_size=2),
    )
    def test_fast_paxos_safe_under_crashes(self, seed, crashed):
        inputs = ["a", "b", "c"]
        faults = FaultPlan()
        for pid in crashed:
            faults.crash_process(pid, at=float(seed % 7) / 2)
        result = run_consensus(
            FastPaxos(), 3, 0, inputs=inputs, faults=faults, seed=seed,
            omega="crash-aware", deadline=4000,
        )
        _check_safety(result, inputs)


class TestPmpCrashMatrix:
    @_PROPERTY_SETTINGS
    @given(
        seed=st.integers(0, 10_000),
        crash_time=st.floats(0.0, 10.0),
        n=st.integers(2, 4),
    )
    def test_any_single_crash_any_time(self, seed, crash_time, n):
        inputs = [f"v{p}" for p in range(n)]
        faults = FaultPlan().crash_process(seed % n, at=crash_time)
        result = run_consensus(
            ProtectedMemoryPaxos(), n, 3, inputs=inputs, faults=faults,
            seed=seed, omega="crash-aware", deadline=4000,
        )
        _check_safety(result, inputs)

    @_PROPERTY_SETTINGS
    @given(
        seed=st.integers(0, 10_000),
        mem_crash=st.integers(0, 2),
        crash_time=st.floats(0.0, 6.0),
    )
    def test_any_single_memory_crash(self, seed, mem_crash, crash_time):
        inputs = ["a", "b", "c"]
        faults = FaultPlan().crash_memory(mem_crash, at=crash_time)
        result = run_consensus(
            ProtectedMemoryPaxos(), 3, 3, inputs=inputs, faults=faults,
            seed=seed, deadline=4000,
        )
        _check_safety(result, inputs)
        assert result.all_decided  # minority memory crash: still live


class TestAlignedCombinedMatrix:
    @_PROPERTY_SETTINGS
    @given(
        seed=st.integers(0, 10_000),
        proc_crash=st.booleans(),
        mem_crash=st.booleans(),
    )
    def test_two_agent_crashes_safe_and_live(self, seed, proc_crash, mem_crash):
        inputs = ["a", "b", "c"]
        faults = FaultPlan()
        if proc_crash:
            faults.crash_process(1, at=0.5)
        if mem_crash:
            faults.crash_memory(2, at=0.5)
        result = run_consensus(
            AlignedPaxos(), 3, 3, inputs=inputs, faults=faults, seed=seed,
            deadline=6000,
        )
        _check_safety(result, inputs)
        assert result.all_decided

    @_PROPERTY_SETTINGS
    @given(seed=st.integers(0, 10_000))
    def test_disk_variant_safe(self, seed):
        inputs = ["a", "b", "c"]
        result = run_consensus(
            AlignedPaxos(AlignedConfig(variant="disk")), 3, 3, inputs=inputs,
            latency=JitteredSynchrony(0.5), seed=seed, deadline=6000,
        )
        _check_safety(result, inputs)


class TestLeaderFlapSafety:
    @_PROPERTY_SETTINGS
    @given(
        seed=st.integers(0, 10_000),
        flips=st.lists(st.floats(0.5, 50.0), min_size=1, max_size=5),
    )
    def test_pmp_safe_under_arbitrary_leader_flapping(self, seed, flips):
        from repro.consensus.omega import leader_schedule

        schedule = [(0.0, 0)] + [
            (t, i % 2) for i, t in enumerate(sorted(flips), start=1)
        ]
        inputs = ["a", "b"]
        result = run_consensus(
            ProtectedMemoryPaxos(), 2, 3, inputs=inputs,
            omega=leader_schedule(schedule), seed=seed, deadline=4000,
        )
        _check_safety(result, inputs)
