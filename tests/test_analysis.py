"""The multi-seed sweep / distribution-summary module."""

import pytest

from repro import MessagePaxos, ProtectedMemoryPaxos
from repro.metrics.analysis import DelayStats, summarize, sweep_decision_delays
from repro.sim.latency import JitteredSynchrony


class TestSummarize:
    def test_basic_stats(self):
        stats = summarize([2.0, 2.0, 4.0, 4.0])
        assert stats.n_samples == 4
        assert stats.mean == 3.0
        assert stats.p50 == 3.0
        assert stats.minimum == 2.0
        assert stats.maximum == 4.0

    def test_single_sample(self):
        stats = summarize([2.0])
        assert stats.mean == stats.p50 == stats.p99 == 2.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_undecided_carried(self):
        stats = summarize([1.0], undecided=3)
        assert stats.undecided == 3

    def test_row_rendering(self):
        row = summarize([2.0, 2.5]).row()
        assert row[0] == "2"
        assert all(isinstance(cell, str) for cell in row)

    def test_percentile_ordering(self):
        stats = summarize(list(range(1, 101)))
        assert stats.p50 <= stats.p90 <= stats.p99 <= stats.maximum


class TestSweep:
    def test_nominal_sweep_is_constant(self):
        stats = sweep_decision_delays(ProtectedMemoryPaxos, seeds=range(5))
        assert stats.n_samples == 5
        assert stats.minimum == stats.maximum == 2.0
        assert stats.undecided == 0

    def test_jitter_sweep_spreads(self):
        stats = sweep_decision_delays(
            MessagePaxos,
            seeds=range(8),
            latency_factory=lambda: JitteredSynchrony(0.4),
            n_memories=0,
        )
        assert stats.n_samples == 8
        assert stats.minimum >= 4.0
        assert stats.maximum > stats.minimum

    def test_all_runs_undecided_raises(self):
        # With a deadline below the minimum decision latency no run can
        # produce a sample, and an empty summary must be an explicit error.
        with pytest.raises(ValueError):
            sweep_decision_delays(
                ProtectedMemoryPaxos, seeds=range(2), deadline=1.0
            )
