"""Scale tests: larger clusters, longer logs, deeper fault mixes."""

import pytest

from repro import (
    AlignedPaxos,
    FastRobust,
    FaultPlan,
    MessagePaxos,
    ProtectedMemoryPaxos,
    run_consensus,
)
from repro.consensus.base import ConsensusProtocol
from repro.core.cluster import Cluster, ClusterConfig
from repro.smr.kv import KVCommand, KVStateMachine
from repro.smr.log import ReplicatedLog, smr_regions


class TestWideClusters:
    def test_fast_robust_n9(self):
        result = run_consensus(FastRobust(), 9, 3, deadline=60_000)
        assert result.all_decided and result.agreed
        assert result.earliest_decision_delay == 2.0

    def test_pmp_n9_m9(self):
        result = run_consensus(ProtectedMemoryPaxos(), 9, 9, deadline=10_000)
        assert result.all_decided
        assert result.earliest_decision_delay == 2.0

    def test_pmp_eight_crashes_of_nine(self):
        faults = FaultPlan()
        for pid in range(8):
            faults.crash_process(pid, at=0.0)
        result = run_consensus(
            ProtectedMemoryPaxos(), 9, 3, faults=faults,
            omega="crash-aware", deadline=10_000,
        )
        assert result.all_decided and result.agreed
        assert result.decided_values == {"value-9"}

    def test_message_paxos_n11(self):
        result = run_consensus(MessagePaxos(), 11, 0, deadline=10_000)
        assert result.all_decided and result.agreed

    def test_aligned_5_plus_5_agents(self):
        # 10 agents; tolerate 4 combined crashes.
        faults = (
            FaultPlan()
            .crash_process(3, at=0.0)
            .crash_process(4, at=0.0)
            .crash_memory(0, at=0.0)
            .crash_memory(1, at=0.0)
        )
        result = run_consensus(
            AlignedPaxos(), 5, 5, faults=faults, deadline=20_000
        )
        assert result.all_decided and result.agreed


class _LongLog(ConsensusProtocol):
    name = "long-log"

    def __init__(self, n_slots):
        self.n_slots = n_slots
        self.machines = {}

    def regions(self, n, m):
        return smr_regions(n)

    def tasks(self, env, value):
        machine = KVStateMachine()
        log = ReplicatedLog(env, machine.apply)
        self.machines[int(env.pid)] = machine

        def driver():
            if env.leader() == env.pid:
                for slot in range(self.n_slots):
                    yield from log.propose(
                        slot, KVCommand("put", f"k{slot % 10}", slot)
                    )
            while log.applied_upto < self.n_slots - 1:
                yield env.gate_wait(log.commit_gate, timeout=10.0)
            env.decide(machine.applied_count)

        return [("listener", log.listener()), ("driver", driver())]


class TestLongLogs:
    def test_fifty_slot_log(self):
        harness = _LongLog(50)
        cluster = Cluster(harness, ClusterConfig(3, 3, deadline=10_000))
        result = cluster.run([None] * 3)
        assert result.all_decided and result.agreed
        assert result.decided_values == {50}
        # Steady state: 2 delays per commit for the leader.
        leader_machine = harness.machines[0]
        assert leader_machine.applied_count == 50

    def test_long_log_throughput_is_linear(self):
        harness = _LongLog(30)
        cluster = Cluster(harness, ClusterConfig(3, 3, deadline=10_000))
        cluster.start([None] * 3)
        kernel = cluster.kernel
        kernel.run(
            until=10_000,
            stop_when=lambda: 0 in kernel.metrics.decisions,
        )
        # Leader finishes 30 slots in ~60 delays (2 per slot).
        assert kernel.now <= 70.0
