"""Targeted tests for branches the main suites do not reach."""

import pytest

from repro.consensus.aligned_paxos import AlignedConfig, AlignedNode, aligned_regions
from repro.consensus.fast_robust import FastRobust, FastRobustConfig
from repro.broadcast.nonequivocating import neb_regions
from repro.consensus.cheap_quorum import CheapQuorumConfig, cq_regions
from repro.core.cluster import Cluster, ClusterConfig
from repro.errors import PermissionError_
from repro.rdma.verbs import RdmaNic
from repro.smr.log import ReplicatedLog, smr_regions
from repro.smr.kv import KVCommand, KVStateMachine
from repro.types import ProcessId

from tests.conftest import env_of, make_kernel


class TestAlignedInternals:
    def test_region_shapes_per_variant(self):
        protected = aligned_regions(3, "protected")
        disk = aligned_regions(3, "disk")
        assert protected[0].initial_permission.can_write(0)
        assert not protected[0].initial_permission.can_write(1)
        assert all(disk[0].initial_permission.can_write(p) for p in range(3))

    def test_agent_majority_math(self):
        kernel = make_kernel(3, 4)
        node = AlignedNode(env_of(kernel, 0), "v")
        assert node._agent_majority() == (3 + 4) // 2 + 1

    def test_disk_variant_has_static_permissions(self):
        from repro.mem.permissions import Permission

        spec = aligned_regions(3, "disk")[0]
        anything = Permission.read_only(range(3))
        assert not spec.legal_change(0, spec.initial_permission, anything)


class TestRdmaEdgeCases:
    def _nic(self):
        kernel = make_kernel()
        return RdmaNic(env_of(kernel, 0)), kernel

    def test_destroyed_qp_blocks_one_sided(self):
        nic, kernel = self._nic()
        pd = nic.alloc_pd()
        qp = nic.create_qp(pd, ProcessId(1))
        mr = pd.register(0, "r", ("x",), access="read")
        qp.destroy()
        with pytest.raises(PermissionError_):
            list(nic.post_read(qp, mr, ("x", "k")))

    def test_cross_domain_rkey_rejected(self):
        nic, kernel = self._nic()
        pd_a = nic.alloc_pd()
        pd_b = nic.alloc_pd()
        qp = nic.create_qp(pd_a, ProcessId(1))
        mr_b = pd_b.register(0, "r", ("x",), access="read")
        with pytest.raises(PermissionError_):
            list(nic.post_read(qp, mr_b, ("x", "k")))

    def test_destroyed_qp_blocks_sends(self):
        nic, kernel = self._nic()
        pd = nic.alloc_pd()
        qp = nic.create_qp(pd, ProcessId(1))
        qp.destroy()
        with pytest.raises(PermissionError_):
            list(nic.post_send(qp, "payload"))


class TestSmrTakeoverCache:
    def test_new_leader_adopts_every_prior_slot(self):
        """The takeover snapshot must cover slots the new leader never
        proposed — the multi-instance safety fix."""
        from repro.consensus.omega import leader_schedule

        class Harness:
            pass

        machines = {}
        logs = {}

        from repro.consensus.base import ConsensusProtocol

        class Proto(ConsensusProtocol):
            name = "cache-probe"

            def regions(self, n, m):
                return smr_regions(n)

            def tasks(self, env, value):
                machine = KVStateMachine()
                log = ReplicatedLog(env, machine.apply)
                machines[int(env.pid)] = machine
                logs[int(env.pid)] = log

                def driver():
                    pid = int(env.pid)
                    if pid == 0:
                        for slot in range(3):
                            yield from log.propose(
                                slot, KVCommand("put", f"k{slot}", "A")
                            )
                    elif pid == 1:
                        yield env.sleep(10.0)  # after A committed 0..2
                        # B proposes slot 3 first — its takeover snapshot
                        # must reveal slots 0..2 so later proposals of
                        # those slots re-commit A's values.
                        yield from log.propose(3, KVCommand("put", "k3", "B"))
                        yield from log.propose(0, KVCommand("put", "k0", "B"))
                    while log.applied_upto < 3:
                        yield env.gate_wait(log.commit_gate, timeout=5.0)
                    env.decide(tuple(sorted(machine.snapshot().items())))

                return [("listener", log.listener()), ("driver", driver())]

        cluster = Cluster(
            Proto(),
            ClusterConfig(
                3, 3, deadline=5000,
                omega=leader_schedule([(0.0, 0), (9.0, 1)]),
            ),
        )
        result = cluster.run([None] * 3)
        assert result.all_decided and result.agreed
        final = machines[2].snapshot()
        # Slot 0 was committed by A; B's re-proposal must adopt A's value.
        assert final["k0"] == "A"
        assert final["k3"] == "B"

    def test_cache_invalidated_on_permission_loss(self):
        kernel = make_kernel(2, 3, regions=smr_regions(2))
        env = env_of(kernel, 0)
        log = ReplicatedLog(env, lambda s, c: None)
        assert log.permissions_held  # initial leader
        log.permissions_held = False
        assert log.adopt_cache == {}


class TestFastRobustNamespaces:
    def test_run_instance_with_custom_namespaces(self):
        from repro.consensus.base import ConsensusProtocol

        class Proto(ConsensusProtocol):
            name = "ns-probe"

            def __init__(self):
                self.fr = FastRobust(
                    FastRobustConfig(
                        cheap_quorum=CheapQuorumConfig(
                            leader_timeout=15.0, unanimity_timeout=25.0
                        )
                    )
                )

            def regions(self, n, m):
                return cq_regions(n, 0, namespace="cqX") + neb_regions(
                    range(n), namespace="nebX"
                )

            def tasks(self, env, value):
                def main():
                    decided = yield from self.fr.run_instance(
                        env, value, cq_namespace="cqX", neb_namespace="nebX",
                        instance="X",
                    )
                    env.decide(decided)
                    return decided

                return [("main", main())]

        cluster = Cluster(Proto(), ClusterConfig(3, 3, deadline=60_000))
        result = cluster.run(["nsv-1", "nsv-2", "nsv-3"])
        assert result.all_decided and result.agreed
        assert result.decided_values == {"nsv-1"}
        assert "X" in result.metrics.instance_decisions
