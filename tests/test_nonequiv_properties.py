"""Property-based tests for non-equivocating broadcast under random
schedules: the Definition 1 properties must hold for every jitter seed."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.broadcast.nonequivocating import (
    NonEquivocatingBroadcast,
    neb_regions,
)
from repro.sim.latency import JitteredSynchrony
from repro.types import ProcessId

from tests.conftest import env_of, make_kernel

_SETTINGS = settings(
    max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def _run_broadcast_session(seed, jitter, messages_per_sender, n=3):
    kernel = make_kernel(
        n, 3, regions=neb_regions(range(n)),
        latency=JitteredSynchrony(jitter), seed=seed,
    )
    endpoints = []
    for p in range(n):
        env = env_of(kernel, p)
        neb = NonEquivocatingBroadcast(env)
        kernel.spawn(p, "neb", neb.delivery_daemon())
        endpoints.append(neb)

        def sender(neb=neb, p=p):
            for i in range(messages_per_sender):
                yield from neb.broadcast((p, i))

        kernel.spawn(p, "send", sender())
    kernel.run(until=3000)
    return endpoints


class TestBroadcastProperties:
    @_SETTINGS
    @given(
        seed=st.integers(0, 10_000),
        jitter=st.floats(0.0, 0.8),
        count=st.integers(1, 4),
    )
    def test_all_correct_processes_deliver_everything(self, seed, jitter, count):
        endpoints = _run_broadcast_session(seed, jitter, count)
        expected = {(ProcessId(p), k) for p in range(3) for k in range(1, count + 1)}
        for neb in endpoints:
            delivered = {(d.sender, d.k) for d in neb.delivered}
            assert delivered == expected

    @_SETTINGS
    @given(seed=st.integers(0, 10_000), jitter=st.floats(0.0, 0.8))
    def test_identical_payload_per_slot_across_receivers(self, seed, jitter):
        endpoints = _run_broadcast_session(seed, jitter, 3)
        views = [
            {(d.sender, d.k): d.payload for d in neb.delivered}
            for neb in endpoints
        ]
        for key in views[0]:
            values = {view[key] for view in views if key in view}
            assert len(values) == 1

    @_SETTINGS
    @given(seed=st.integers(0, 10_000))
    def test_per_sender_delivery_order(self, seed):
        endpoints = _run_broadcast_session(seed, 0.5, 4)
        for neb in endpoints:
            for sender in range(3):
                ks = [d.k for d in neb.delivered if int(d.sender) == sender]
                assert ks == sorted(ks)
                assert ks == list(range(1, len(ks) + 1))

    @_SETTINGS
    @given(seed=st.integers(0, 10_000))
    def test_no_duplicate_deliveries(self, seed):
        endpoints = _run_broadcast_session(seed, 0.6, 3)
        for neb in endpoints:
            keys = [(d.sender, d.k) for d in neb.delivered]
            assert len(keys) == len(set(keys))
