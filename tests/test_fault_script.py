"""The FaultScript DSL, typed fault-timer entries, and fault primitives:
crash/recover for processes and memories, partitions, link chaos, and
permission storms — each exercised directly against the kernel."""

import pytest

from repro.errors import ConfigurationError
from repro.failures.plans import FaultPlan
from repro.failures.script import FaultScript
from repro.mem.permissions import Permission
from repro.sim.event_queue import EV_CALL, EV_FAULT
from repro.sim.faults import (
    FK_CRASH_PROC,
    FK_HEAL,
    FK_PARTITION,
    FK_PERM_CHANGE,
    FK_RECOVER_PROC,
    LinkFault,
)
from repro.types import MemoryId, ProcessId

from tests.conftest import env_of, make_kernel, open_region


class TestDsl:
    def test_crash_recover_chain(self):
        script = FaultScript().at(5.0).crash_process(1).recover(at=20.0)
        kinds = [(t, e.kind) for t, e in script.events]
        assert kinds == [(5.0, FK_CRASH_PROC), (20.0, FK_RECOVER_PROC)]

    def test_partition_heal_chain(self):
        script = FaultScript().at(2.0).partition({0, 1}, {2}).heal(at=9.0)
        kinds = [(t, e.kind) for t, e in script.events]
        assert kinds == [(2.0, FK_PARTITION), (9.0, FK_HEAL)]

    def test_chains_keep_flowing_through_handles(self):
        script = (
            FaultScript()
            .at(1.0).crash_process(0).recover(at=4.0)
            .at(2.0).partition({0}, {1, 2})
            .at(3.0).crash_memory(1).recover(at=6.0, wipe=True)
        )
        assert len(script.events) == 5

    def test_storm_expands_to_shots(self):
        script = FaultScript().at(1.0).permission_storm(
            pid=2, region="r", shots=3, spacing=0.5
        )
        times = [t for t, e in script.events if e.kind == FK_PERM_CHANGE]
        assert times == [1.0, 1.5, 2.0]

    def test_faulty_processes_reflect_end_of_run(self):
        script = (
            FaultScript()
            .at(1.0).crash_process(0).recover(at=5.0)
            .at(2.0).crash_process(1)
        )
        script.make_byzantine(2, object())
        assert script.faulty_processes == {1, 2}

    def test_validate_rejects_unknown_subjects(self):
        with pytest.raises(ConfigurationError):
            FaultScript().at(1.0).crash_process(7).validate(3, 3)
        with pytest.raises(ConfigurationError):
            FaultScript().at(1.0).crash_memory(9).validate(3, 3)
        with pytest.raises(ConfigurationError):
            FaultScript().at(1.0).permission_storm(pid=0, region="r", mids=[5]).validate(3, 3)

    def test_validate_rejects_overlapping_partition(self):
        with pytest.raises(ConfigurationError):
            FaultScript().at(1.0).partition({0, 1}, {1, 2}).validate(3, 3)

    def test_validate_rejects_crashed_byzantine(self):
        script = FaultScript().at(1.0).crash_process(1)
        script.make_byzantine(1, object())
        with pytest.raises(ConfigurationError):
            script.validate(3, 3)

    def test_single_group_partition_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultScript().at(1.0).partition({0, 1, 2})

    def test_link_fault_expiry_must_follow_start(self):
        with pytest.raises(ConfigurationError):
            FaultScript().at(5.0).drop_link(0, 1, until=5.0)

    def test_recovery_must_follow_the_crash(self):
        with pytest.raises(ConfigurationError):
            FaultScript().at(5.0).crash_process(0).recover(at=3.0)
        with pytest.raises(ConfigurationError):
            FaultScript().at(5.0).crash_memory(0).recover(at=5.0)
        with pytest.raises(ConfigurationError):
            FaultScript().at(5.0).partition({0}, {1, 2}).heal(at=4.0)


class TestTypedFaultTimers:
    def test_plan_installs_closure_free_entries(self):
        """Satellite: FaultPlan compiles to EV_FAULT entries, not EV_CALL
        lambdas."""
        kernel = make_kernel()
        FaultPlan().crash_process(1, at=5.0).crash_memory(0, at=3.0).install(kernel)
        kinds = {entry[2] for entry in kernel.queue._heap}
        assert kinds == {EV_FAULT}
        assert EV_CALL not in kinds
        kernel.run(until=10)
        assert ProcessId(1) in kernel.crashed_processes
        assert kernel.memories[0].crashed

    def test_script_installs_typed_entries(self):
        kernel = make_kernel()
        FaultScript().at(2.0).crash_process(0).recover(at=4.0).install(kernel)
        assert {entry[2] for entry in kernel.queue._heap} == {EV_FAULT}

    def test_plan_to_script_equivalence(self):
        plan = FaultPlan().crash_process(1, at=5.0).crash_memory(2, at=3.0)
        plan.make_byzantine(0, "strategy")
        script = plan.to_script()
        assert script.faulty_processes == plan.faulty_processes
        kernel = make_kernel()
        script.install(kernel)
        kernel.run(until=10)
        assert ProcessId(1) in kernel.crashed_processes
        assert kernel.memories[2].crashed
        assert ProcessId(0) in kernel.byzantine_processes


class TestProcessRecovery:
    def test_crash_kills_tasks_and_recovery_respawns(self):
        kernel = make_kernel()
        env = env_of(kernel, 0)

        def forever():
            while True:
                yield env.sleep(1.0)

        task = kernel.spawn(0, "loop", forever())
        respawned = []
        kernel.failures.on_recover(lambda pid: respawned.append(int(pid)))
        FaultScript().at(3.0).crash_process(0).recover(at=7.0).install(kernel)
        kernel.run(until=10)
        assert task.done  # killed at the crash, not merely suspended
        assert respawned == [0]
        assert ProcessId(0) not in kernel.crashed_processes

    def test_crash_hook_fires(self):
        kernel = make_kernel()
        crashed = []
        kernel.failures.on_crash(lambda pid: crashed.append(int(pid)))
        FaultScript().at(1.0).crash_process(2).install(kernel)
        kernel.run(until=2)
        assert crashed == [2]

    def test_stale_timer_never_fires_into_next_incarnation(self):
        """A pre-crash sleep timer must not resume a post-recovery task."""
        kernel = make_kernel()
        env = env_of(kernel, 0)
        wakes = []

        def sleeper(tag):
            yield env.sleep(5.0)
            wakes.append(tag)

        kernel.spawn(0, "old", sleeper("old"))
        FaultScript().at(1.0).crash_process(0).recover(at=2.0).install(kernel)
        kernel.failures.on_recover(
            lambda pid: kernel.spawn(pid, "new", sleeper("new"))
        )
        kernel.run(until=20)
        assert wakes == ["new"]

    def test_fault_timeline_records_spans(self):
        kernel = make_kernel()
        FaultScript().at(1.0).crash_process(0).recover(at=4.0).install(kernel)
        kernel.run(until=10)
        assert kernel.metrics.downtime_spans("p1") == [(1.0, 4.0)]


class TestMemoryRecovery:
    def _write(self, kernel, env, key, value):
        def writer():
            result = yield from env.write(0, "r", key, value)
            return result

        task = kernel.spawn(0, "w", writer())
        kernel.run(until=kernel.now + 10)
        return task.result

    def test_ops_hang_while_down_and_resolve_after(self):
        kernel = make_kernel()
        env = env_of(kernel, 0)
        assert self._write(kernel, env, ("x", 1), "before").ok
        kernel.crash_memory(MemoryId(0))
        hung = self._write(kernel, env, ("x", 2), "during")
        assert hung is None  # the op hung: the task never finished
        kernel.recover_memory(MemoryId(0))
        assert self._write(kernel, env, ("x", 3), "after").ok
        assert kernel.memories[0].peek(("x", 1)) == "before"
        assert kernel.memories[0].peek(("x", 3)) == "after"

    def test_wipe_clears_registers_and_resets_permissions(self):
        region = open_region(3)
        kernel = make_kernel(regions=[region])
        env = env_of(kernel, 0)
        assert self._write(kernel, env, ("x", 1), "v").ok
        memory = kernel.memories[0]
        memory.permissions["r"] = Permission.read_only(range(3))
        kernel.crash_memory(MemoryId(0))
        kernel.recover_memory(MemoryId(0), wipe=True)
        from repro.types import BOTTOM

        assert memory.peek(("x", 1)) is BOTTOM
        assert memory.permission_of("r") == region.initial_permission

    def test_intact_recovery_preserves_state(self):
        kernel = make_kernel()
        env = env_of(kernel, 0)
        assert self._write(kernel, env, ("x", 1), "survives").ok
        kernel.crash_memory(MemoryId(0))
        kernel.recover_memory(MemoryId(0))
        assert kernel.memories[0].peek(("x", 1)) == "survives"


class TestPartitions:
    def _ping(self, kernel, src, dst, timeout=5.0):
        """Send src->dst and wait for receipt; returns the recv result."""
        env_src = env_of(kernel, src)
        env_dst = env_of(kernel, dst)

        def sender():
            yield env_src.send(dst, "ping", topic="t")

        def receiver():
            envelope = yield from env_dst.recv(topic="t", timeout=timeout)
            return envelope

        kernel.spawn(src, "tx", sender())
        task = kernel.spawn(dst, "rx", receiver())
        kernel.run(until=kernel.now + timeout + 2)
        return task.result

    def test_partition_blocks_both_directions(self):
        kernel = make_kernel()
        kernel.network.set_partition([{0, 1}, {2}])
        assert self._ping(kernel, 0, 2) is None
        assert self._ping(kernel, 2, 0) is None
        assert self._ping(kernel, 0, 1) is not None
        assert kernel.network.partition_dropped == 2

    def test_heal_restores_delivery(self):
        kernel = make_kernel()
        kernel.network.set_partition([{0, 1}, {2}])
        assert self._ping(kernel, 0, 2) is None
        kernel.network.heal_partition()
        assert self._ping(kernel, 0, 2) is not None

    def test_in_flight_message_lost_at_partition_instant(self):
        """Reachability is checked at DELIVERY: a message sent just before
        the partition lands is lost with it."""
        kernel = make_kernel()
        env0 = env_of(kernel, 0)
        env2 = env_of(kernel, 2)

        def sender():
            yield env0.send(2, "doomed", topic="t")

        def receiver():
            envelope = yield from env2.recv(topic="t", timeout=10.0)
            return envelope

        kernel.spawn(0, "tx", sender())
        task = kernel.spawn(2, "rx", receiver())
        FaultScript().at(0.5).partition({0, 1}, {2}).install(kernel)
        kernel.run(until=15)
        assert task.result is None

    def test_unnamed_processes_keep_full_connectivity(self):
        kernel = make_kernel()
        kernel.network.set_partition([{0}, {1}])
        assert self._ping(kernel, 0, 2) is not None
        assert self._ping(kernel, 2, 1) is not None


class TestLinkChaos:
    def test_delay_inflation(self):
        kernel = make_kernel()
        env0 = env_of(kernel, 0)
        env1 = env_of(kernel, 1)
        FaultScript().at(0.0).delay_link(0, 1, factor=3.0, extra=0.5).install(kernel)

        def sender():
            yield env0.send(1, "slow", topic="t")

        def receiver():
            envelope = yield from env1.recv(topic="t")
            return envelope

        kernel.spawn(0, "tx", sender())
        task = kernel.spawn(1, "rx", receiver())
        kernel.run(until=10)
        # nominal delay 1.0 -> 1.0 * 3 + 0.5
        assert task.result is not None and kernel.now >= 3.5

    def test_drop_and_expiry(self):
        kernel = make_kernel()
        env0 = env_of(kernel, 0)
        env1 = env_of(kernel, 1)
        FaultScript().at(0.0).drop_link(0, 1, prob=1.0, until=5.0).install(kernel)

        def sender(tag, delay):
            def gen():
                yield env0.sleep(delay)
                yield env0.send(1, tag, topic="t")
            return gen()

        def receiver():
            got = []
            while True:
                envelope = yield from env1.recv(topic="t", timeout=20.0)
                if envelope is None:
                    return got
                got.append(envelope.payload)

        kernel.spawn(0, "tx1", sender("lost", 1.0))
        kernel.spawn(0, "tx2", sender("kept", 6.0))
        task = kernel.spawn(1, "rx", receiver())
        kernel.run(until=40)
        assert task.result == ["kept"]
        assert kernel.network.chaos_dropped == 1

    def test_duplication_defeats_nothing_but_tests_idempotence(self):
        kernel = make_kernel()
        env0 = env_of(kernel, 0)
        env1 = env_of(kernel, 1)
        FaultScript().at(0.0).duplicate_link(0, 1, prob=1.0).install(kernel)

        def sender():
            yield env0.send(1, "twice", topic="t")

        def receiver():
            got = []
            while True:
                envelope = yield from env1.recv(topic="t", timeout=5.0)
                if envelope is None:
                    return got
                got.append(envelope.payload)

        kernel.spawn(0, "tx", sender())
        task = kernel.spawn(1, "rx", receiver())
        kernel.run(until=20)
        assert task.result == ["twice", "twice"]

    def test_filters_compose(self):
        fault = LinkFault(delay_factor=2.0).compose(
            LinkFault(delay_factor=3.0, drop_prob=0.5)
        )
        assert fault.delay_factor == 6.0
        assert fault.drop_prob == 0.5
        kernel = make_kernel()
        script = FaultScript()
        script.at(0.0).delay_link(0, 1, factor=2.0)
        script.at(1.0).drop_link(0, 1, prob=1.0)
        script.install(kernel)
        kernel.run(until=2)
        installed = kernel.network.link_faults[(0, 1)]
        assert installed.delay_factor == 2.0 and installed.drop_prob == 1.0

    def test_overlapping_timed_faults_expire_independently(self):
        """The earlier-expiring of two overlapping link faults must not
        cancel the later one: each expiry removes only its own filter."""
        kernel = make_kernel()
        script = FaultScript()
        script.at(0.0).delay_link(0, 1, factor=2.0, until=10.0)
        script.at(5.0).delay_link(0, 1, factor=3.0, until=20.0)
        script.install(kernel)
        kernel.run(until=7.0)
        assert kernel.network.link_faults[(0, 1)].delay_factor == 6.0
        kernel.run(until=12.0)  # first fault expired, second survives
        assert kernel.network.link_faults[(0, 1)].delay_factor == 3.0
        kernel.run(until=25.0)  # both expired
        assert (0, 1) not in kernel.network.link_faults

    def test_validate_rejects_unknown_link_endpoints(self):
        with pytest.raises(ConfigurationError):
            FaultScript().at(1.0).drop_link(0, 7).validate(3, 3)
        with pytest.raises(ConfigurationError):
            FaultScript().at(1.0).delay_link(9, 0, factor=2.0).validate(3, 3)

    def test_symmetric_installs_both_directions(self):
        kernel = make_kernel()
        FaultScript().at(0.0).drop_link(0, 1, symmetric=True).install(kernel)
        kernel.run(until=1)
        assert (0, 1) in kernel.network.link_faults
        assert (1, 0) in kernel.network.link_faults


class TestPermissionStorms:
    def _kernel_with_grabbable_region(self):
        from repro.mem.permissions import exclusive_grab_policy
        from repro.mem.regions import RegionSpec

        region = RegionSpec(
            "r",
            ("r",),
            Permission.exclusive_writer(0, range(3)),
            legal_change=exclusive_grab_policy(range(3)),
        )
        return make_kernel(regions=[region])

    def test_storm_steals_the_region(self):
        kernel = self._kernel_with_grabbable_region()
        FaultScript().at(1.0).permission_storm(
            pid=2, region="r", shots=2, spacing=1.0
        ).install(kernel)
        kernel.run(until=5)
        expected = Permission.exclusive_writer(2, range(3))
        for memory in kernel.memories:
            assert memory.permission_of("r") == expected
        records = kernel.metrics.faults_of("perm_change")
        assert len(records) == 2 * 3  # shots x memories
        assert all(record.detail["ok"] for record in records)

    def test_illegal_storm_naks_and_changes_nothing(self):
        kernel = make_kernel()  # open region, static permissions (no policy)
        before = kernel.memories[0].permission_of("r")
        FaultScript().at(1.0).permission_storm(
            pid=1, region="r", shots=1, mids=[0],
            permission=Permission.read_only(range(3)),
        ).install(kernel)
        kernel.run(until=3)
        assert kernel.memories[0].permission_of("r") == before
        records = kernel.metrics.faults_of("perm_change")
        assert len(records) == 1 and not records[0].detail["ok"]
        assert kernel.memories[0].counts.naks == 1

    def test_crashed_memories_are_skipped(self):
        kernel = self._kernel_with_grabbable_region()
        kernel.crash_memory(MemoryId(1))
        FaultScript().at(1.0).permission_storm(
            pid=2, region="r", shots=1
        ).install(kernel)
        kernel.run(until=3)
        assert len(kernel.metrics.faults_of("perm_change")) == 2  # mu2 skipped
