"""The observability stack: spans, critical path, metrics, sinks, flight.

The acceptance claims of the tracing layer mirror the paper's Section 3
complexity metric: a traced steady-state Protected Memory Paxos decision
must decompose to exactly **2 memory delays** (the single permission-fenced
phase-2 write), and traced message-passing Paxos to **4 message delays**
end-to-end of which the decision-forming accept phase costs **2** — the
analyzer reproduces the delay counts the paper states, from spans alone.
"""

import io
import json

import pytest

from repro.consensus.message_paxos import MessagePaxos
from repro.consensus.protected_memory_paxos import ProtectedMemoryPaxos
from repro.core.cluster import Cluster, ClusterConfig
from repro.errors import AgreementViolation, StalenessViolation
from repro.metrics.reporting import run_report
from repro.obs import (
    ChromeTraceSink,
    Span,
    JsonlSink,
    K_MEMOP,
    K_MSG,
    K_TASK,
    MetricsRegistry,
    attach,
    critical_path,
    critical_path_between,
    detach,
    render_tree,
    span_tree,
)
from repro.shard.service import ShardConfig, ShardedKV
from repro.shard.workload import ClosedLoopClient, OperationMix, UniformKeys
from repro.failures.script import FaultScript
from repro.types import ProcessId

from conftest import env_of, make_kernel, run_single


def traced_cluster(protocol, **cfg):
    cluster = Cluster(protocol, ClusterConfig(3, 3, **cfg))
    return cluster, attach(cluster.kernel)


def traced_service(**cfg):
    service = ShardedKV(ShardConfig(n_shards=2, n_processes=3, n_memories=3, **cfg))
    return service, attach(service.kernel)


# ----------------------------------------------------------------------
# zero-cost contract and attach/detach lifecycle
# ----------------------------------------------------------------------
class TestAttachLifecycle:
    def test_obs_is_off_by_default(self, kernel):
        assert kernel.obs is None

        def noop():
            return
            yield

        task = run_single(kernel, 0, noop())
        assert task.done

    def test_attach_is_idempotent(self, kernel):
        runtime = attach(kernel)
        assert attach(kernel) is runtime
        assert kernel.obs is runtime

    def test_detach_quiesces_hooks_and_closes_sinks(self, kernel):
        runtime = attach(kernel)
        buffer = io.StringIO()
        runtime.add_sink(JsonlSink(buffer))
        detach(kernel)
        assert kernel.obs is None
        assert runtime.sinks == []
        assert runtime._on_violation not in kernel.metrics.violation_hooks

    def test_detached_run_records_nothing(self, kernel):
        runtime = attach(kernel)
        detach(kernel)

        def pinger(env):
            yield env.send(1, "x", topic="t")

        run_single(kernel, 0, pinger(env_of(kernel, 0)))
        assert runtime.spans == []


# ----------------------------------------------------------------------
# the span model: tasks, messages, memory ops, phases
# ----------------------------------------------------------------------
class TestSpanModel:
    def test_message_span_crosses_processes(self, kernel):
        runtime = attach(kernel)
        env0, env1 = env_of(kernel, 0), env_of(kernel, 1)

        def sender():
            yield env0.send(1, "ping", topic="t")

        def receiver():
            yield from env1.recv(topic="t")

        kernel.spawn(ProcessId(0), "sender", sender())
        kernel.spawn(ProcessId(1), "receiver", receiver())
        kernel.run(until=100)
        msgs = [s for s in runtime.spans if s.kind == K_MSG]
        assert len(msgs) == 1
        msg = msgs[0]
        # the message span parents under the sender's task span and the
        # receiver's task adopted it: one trace spans both processes
        sender_span = next(s for s in runtime.spans if s.name == "sender")
        assert msg.parent_id == sender_span.span_id
        assert msg.trace_id == sender_span.trace_id
        assert msg.end is not None and msg.end > msg.start

    def test_memop_span_closes_with_status(self, kernel):
        runtime = attach(kernel)
        env = env_of(kernel, 0)

        def writer():
            yield from env.write(0, "r", ("x", "k"), 1)

        run_single(kernel, 0, writer())
        ops = [s for s in runtime.spans if s.kind == K_MEMOP]
        assert len(ops) == 1
        assert ops[0].attrs["status"] == "ack"
        assert ops[0].end - ops[0].start == pytest.approx(2.0)

    def test_spawned_task_inherits_context(self, kernel):
        runtime = attach(kernel)
        env = env_of(kernel, 0)

        def child():
            yield env.sleep(1)

        def parent():
            yield env.spawn("child", child())
            yield env.sleep(2)

        kernel.spawn(ProcessId(0), "parent-task", parent())
        kernel.run(until=100)
        parent_span = next(s for s in runtime.spans if s.name == "parent-task")
        child_span = next(s for s in runtime.spans if s.name == "child")
        assert child_span.trace_id == parent_span.trace_id

    def test_phase_spans_nest_and_restore_context(self, kernel):
        runtime = attach(kernel)
        env = env_of(kernel, 0)

        def worker():
            obs = env.obs
            phase = obs and obs.phase("outer", tag=1)
            try:
                yield from env.write(0, "r", ("x", "k"), 1)
            finally:
                if phase:
                    phase.finish()
            yield from env.write(0, "r", ("x", "k"), 2)

        kernel.spawn(ProcessId(0), "worker", worker())
        kernel.run(until=100)
        phase_span = next(s for s in runtime.spans if s.name == "outer")
        ops = [s for s in runtime.spans if s.kind == K_MEMOP]
        # first write under the phase, second back under the task
        task_span = next(s for s in runtime.spans if s.name == "worker")
        assert ops[0].parent_id == phase_span.span_id
        assert ops[1].parent_id == task_span.span_id
        assert phase_span.attrs == {"tag": 1}

    def test_crash_closes_task_spans_as_killed(self):
        script = FaultScript()
        script.at(1.0).crash_process(0)
        cluster = Cluster(
            ProtectedMemoryPaxos(), ClusterConfig(3, 3, deadline=10_000), script
        )
        runtime = attach(cluster.kernel)
        cluster.run(["a", "b", "c"])
        killed = [s for s in runtime.spans if (s.attrs or {}).get("killed")]
        assert killed, "crashing p1 should close its task spans as killed"
        assert all(s.kind == K_TASK for s in killed)


# ----------------------------------------------------------------------
# the tentpole acceptance: the analyzer reproduces the paper's counts
# ----------------------------------------------------------------------
class TestPaperDelayCounts:
    def test_pmp_steady_state_is_two_memory_delays(self):
        cluster, runtime = traced_cluster(ProtectedMemoryPaxos())
        result = cluster.run(["a", "b", "c"])
        assert result.all_decided
        path = critical_path(runtime, ProcessId(0))
        assert path.memory_delays == pytest.approx(2.0)
        assert path.message_delays == pytest.approx(0.0)
        assert path.queueing == pytest.approx(0.0)
        assert path.total == pytest.approx(2.0)
        # ...and the delays are attributed to the phase-2 write
        by_phase = path.phase_delays()
        assert by_phase == {"pmp.phase2": {"msg": 0.0, "mem": 2.0, "queue": 0.0}}

    def test_message_paxos_accept_phase_is_two_message_delays(self):
        cluster, runtime = traced_cluster(MessagePaxos())
        result = cluster.run(["a", "b", "c"])
        assert result.all_decided
        path = critical_path(runtime, ProcessId(0))
        assert path.message_delays == pytest.approx(4.0)
        assert path.memory_delays == pytest.approx(0.0)
        assert path.queueing == pytest.approx(0.0)
        by_phase = path.phase_delays()
        assert by_phase["paxos.accept"]["msg"] == pytest.approx(2.0)
        assert by_phase["paxos.prepare"]["msg"] == pytest.approx(2.0)

    def test_summary_renders_the_decomposition(self):
        cluster, runtime = traced_cluster(ProtectedMemoryPaxos())
        cluster.run(["a", "b", "c"])
        text = critical_path(runtime, ProcessId(0)).summary()
        assert "2 memory delays" in text
        assert "pmp.phase2" in text

    def test_queueing_accounts_uncovered_time(self):
        # a decision window with no transport spans at all is pure queueing
        path = critical_path_between([], 0, proposed_at=0.0, decided_at=5.0)
        assert path.queueing == pytest.approx(5.0)
        assert path.segments[0].kind == "queue"


# ----------------------------------------------------------------------
# the whole-stack trace: client put -> router -> batch -> memops
# ----------------------------------------------------------------------
class TestShardedTrace:
    def test_client_put_trace_reaches_the_memories(self):
        service, runtime = traced_service()
        clients = [
            ClosedLoopClient(
                client_id=c, n_ops=3, keys=UniformKeys(16), mix=OperationMix(0.0)
            )
            for c in range(3)
        ]
        report = service.run_workload(clients)
        assert report.ok
        spans = runtime.spans
        submit = next(s for s in spans if s.name == "client.submit")
        trace = [s for s in spans if s.trace_id == submit.trace_id]
        names = {s.name for s in trace}
        # the ISSUE's tree: frontend -> retry loop -> leader batch ->
        # consensus phase -> per-memory op spans, in ONE trace
        assert "router.attempt" in names
        assert "leader.batch" in names
        assert "log.phase2" in names
        assert any(s.kind == K_MEMOP for s in trace)
        # and it renders as a tree rooted at the client task
        text = render_tree(spans, submit.trace_id)
        assert "client.submit" in text and "leader.batch" in text

    def test_fenced_read_serves_under_read_phase(self):
        service, runtime = traced_service(read_mode="leader")
        clients = [
            ClosedLoopClient(
                client_id=c, n_ops=4, keys=UniformKeys(8), mix=OperationMix(0.5)
            )
            for c in range(2)
        ]
        report = service.run_workload(clients)
        assert report.ok
        names = {s.name for s in runtime.spans}
        assert "client.get" in names
        assert "read.serve" in names
        served = sum(
            c.value
            for c in runtime.registry.counters()
            if c.name == "reads.served"
        )
        assert served > 0

    def test_shard_registry_counters_match_ledger(self):
        service, runtime = traced_service()
        clients = [
            ClosedLoopClient(
                client_id=c, n_ops=4, keys=UniformKeys(16), mix=OperationMix(0.0)
            )
            for c in range(2)
        ]
        service.run_workload(clients)
        registry_commits = sum(
            c.value for c in runtime.registry.counters() if c.name == "shard.commits"
        )
        ledger_commits = sum(service.kernel.metrics.shard_commits.values())
        assert registry_commits == ledger_commits > 0


# ----------------------------------------------------------------------
# metrics registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_instruments_intern_by_name_and_labels(self):
        registry = MetricsRegistry()
        a = registry.counter("hits", shard=1)
        b = registry.counter("hits", shard=1)
        c = registry.counter("hits", shard=2)
        assert a is b and a is not c
        a.inc(3)
        assert registry.counter("hits", shard=1).value == 3

    def test_histogram_aggregates_and_percentiles(self):
        registry = MetricsRegistry()
        h = registry.histogram("lat")
        for v in range(100):
            h.observe(float(v))
        assert h.count == 100
        assert h.mean == pytest.approx(49.5)
        assert h.min == 0.0 and h.max == 99.0
        assert h.percentile(50) == pytest.approx(50.0)

    def test_gauge_series_is_bounded(self):
        registry = MetricsRegistry()
        g = registry.gauge("depth")
        for i in range(5000):
            g.sample(float(i), float(i))
        assert len(g.series) == 4096
        assert g.value == 4999.0

    def test_snapshot_renders_labelled_keys(self):
        registry = MetricsRegistry()
        registry.counter("hits", shard=1).inc()
        registry.gauge("depth").set(7)
        snap = registry.snapshot()
        assert snap["hits{shard=1}"] == 1
        assert snap["depth"] == 7

    def test_sampling_ticker_walks_virtual_time(self, kernel):
        runtime = attach(kernel)
        env = env_of(kernel, 0)

        def sleeper():
            yield env.sleep(10)

        runtime.start_sampling(interval=2.0, until=10.0)
        run_single(kernel, 0, sleeper(), until=20)
        series = runtime.registry.gauge("kernel.queue_depth").series
        assert len(series) == 6  # t = 0, 2, 4, 6, 8, 10
        assert [t for t, _v in series] == [0.0, 2.0, 4.0, 6.0, 8.0, 10.0]


# ----------------------------------------------------------------------
# sinks
# ----------------------------------------------------------------------
class TestSinks:
    def _traced_run(self):
        cluster = Cluster(ProtectedMemoryPaxos(), ClusterConfig(3, 3))
        runtime = attach(cluster.kernel)
        jsonl, chrome = io.StringIO(), io.StringIO()
        runtime.add_sink(JsonlSink(jsonl))
        runtime.add_sink(ChromeTraceSink(chrome))
        cluster.run(["a", "b", "c"])
        runtime.close()
        return runtime, jsonl.getvalue(), chrome.getvalue()

    def test_jsonl_streams_one_object_per_span(self):
        runtime, jsonl, _ = self._traced_run()
        lines = [json.loads(line) for line in jsonl.splitlines()]
        assert len(lines) == len(runtime.spans)
        assert all("span" in entry and "name" in entry for entry in lines)

    def test_chrome_trace_is_valid_and_perfetto_shaped(self):
        _, _, chrome = self._traced_run()
        events = json.loads(chrome)
        assert events, "trace must not be empty"
        phases = {event["ph"] for event in events}
        assert "X" in phases  # duration events
        assert "i" in phases  # instant events (decide/propose points)
        first = events[0]
        assert {"name", "pid", "tid", "ts"} <= set(first)


# ----------------------------------------------------------------------
# profiler
# ----------------------------------------------------------------------
class TestProfiler:
    def test_profiles_accumulate_per_task(self):
        cluster, runtime = traced_cluster(ProtectedMemoryPaxos())
        cluster.run(["a", "b", "c"])
        resumes, wall = runtime.profiler.totals()
        assert resumes > 0 and wall > 0
        labels = {p.label for p in runtime.profiler.profiles.values()}
        assert any("pmp-proposer" in label for label in labels)
        report = runtime.profiler.report(limit=5)
        assert "task profile" in report and "resumes" in report


# ----------------------------------------------------------------------
# flight recorder
# ----------------------------------------------------------------------
class TestFlightRecorder:
    def test_agreement_violation_trips_a_dump(self):
        kernel = make_kernel()
        runtime = attach(kernel)
        kernel.metrics.record_decision(ProcessId(0), "a", 1.0)
        with pytest.raises(AgreementViolation):
            kernel.metrics.record_decision(ProcessId(1), "b", 2.0)
        dump = runtime.flight.last_dump
        assert dump is not None
        assert "agreement violated" in dump["reason"]

    def test_staleness_violation_trips_a_dump(self):
        kernel = make_kernel()
        runtime = attach(kernel)
        with pytest.raises(StalenessViolation):
            kernel.metrics.record_stale_read("stale read of shard g0")
        assert runtime.flight.last_dump["reason"] == "stale read of shard g0"

    def test_dump_carries_recent_and_open_spans(self, tmp_path):
        path = tmp_path / "flight.json"
        kernel = make_kernel()
        runtime = attach(kernel, flight_path=str(path))
        env = env_of(kernel, 0)

        def worker():
            yield from env.write(0, "r", ("x", "k"), 1)
            yield env.sleep(100)  # leave the task span open at trip time

        kernel.spawn(ProcessId(0), "worker", worker())
        kernel.run(until=10)
        runtime.flight.trip("manual", kernel.now)
        dump = json.loads(path.read_text())
        assert any(s["kind"] == "memop" for s in dump["recent"])
        assert any(s["name"] == "worker" for s in dump["open"])

    def test_ring_keeps_newest(self):
        kernel = make_kernel()
        runtime = attach(kernel, flight_capacity=4)
        env = env_of(kernel, 0)

        def writer():
            for i in range(10):
                yield from env.write(0, "r", ("x", "k"), i)

        run_single(kernel, 0, writer())
        assert len(runtime.flight.ring) == 4


# ----------------------------------------------------------------------
# trace context survives crash/recover respawns (satellite)
# ----------------------------------------------------------------------
class TestTraceAcrossRecovery:
    def test_recovered_process_traces_fresh_and_decides(self):
        script = FaultScript()
        script.at(1.0).crash_process(0).recover(at=30.0)
        cluster = Cluster(
            ProtectedMemoryPaxos(), ClusterConfig(3, 3, deadline=60_000), script
        )
        from repro.consensus.omega import crash_aware_omega

        cluster.kernel.omega = crash_aware_omega(cluster.kernel)
        runtime = attach(cluster.kernel)
        result = cluster.run(["a", "b", "c"])
        assert result.all_decided and result.agreed
        # the first incarnation's spans were closed as killed...
        killed = [s for s in runtime.spans if (s.attrs or {}).get("killed")]
        assert killed and all(s.end == 1.0 for s in killed)
        # ...the respawned incarnation opened fresh root traces...
        respawned = [
            s
            for s in runtime.spans + runtime.open_spans()
            if s.kind == K_TASK and s.start == 30.0 and s.actor.startswith("p1/")
        ]
        assert respawned
        killed_traces = {s.trace_id for s in killed}
        assert all(s.trace_id not in killed_traces for s in respawned)
        # ...and the recovered process's decision is traceable end to end
        path = critical_path(runtime, ProcessId(0))
        assert path.decided_at > 30.0
        assert path.memory_delays >= 2.0  # full takeover: prepare + phase 2

    def test_sharded_recovery_keeps_tracing(self):
        script = FaultScript()
        script.at(30.0).crash_process(2).recover(at=90.0)
        service = ShardedKV(
            ShardConfig(
                n_shards=2,
                n_processes=3,
                n_memories=3,
                faults=script,
                deadline=100_000,
            )
        )
        runtime = attach(service.kernel)
        # pin clients to surviving processes: p3 crashes mid-run
        clients = [
            ClosedLoopClient(
                client_id=c,
                n_ops=12,
                keys=UniformKeys(16),
                mix=OperationMix(0.0),
                think_time=10.0,
                pid=c % 2,
            )
            for c in range(3)
        ]
        report = service.run_workload(clients)
        assert report.ok
        # batches committed after the recovery still trace to the memories
        late_batches = [
            s
            for s in runtime.spans
            if s.name == "leader.batch" and s.start > 90.0
        ]
        assert late_batches, "ops blocked by the crash must commit after recovery"
        for batch in late_batches:
            index = span_tree(runtime.spans, batch.trace_id)
            kids = index.get(batch.span_id, [])
            assert any(k.name == "log.phase2" or k.kind == K_MEMOP for k in kids)


# ----------------------------------------------------------------------
# the combined run report
# ----------------------------------------------------------------------
class TestRunReport:
    def test_report_combines_workload_faults_reconfig_and_obs(self):
        script = FaultScript()
        script.at(30.0).crash_process(2).recover(at=90.0)
        service = ShardedKV(
            ShardConfig(
                n_shards=2,
                n_processes=3,
                n_memories=3,
                faults=script,
                deadline=100_000,
            )
        )
        runtime = attach(service.kernel)
        clients = [
            ClosedLoopClient(
                client_id=c,
                n_ops=12,
                keys=UniformKeys(16),
                mix=OperationMix(0.0),
                think_time=10.0,
            )
            for c in range(2)
        ]
        report = service.run_workload(clients)
        text = run_report(report, service.kernel.metrics, runtime)
        assert "workload" in text
        assert "fault timeline" in text
        assert "crash_proc" in text and "recover_proc" in text
        assert "reconfiguration timeline" in text
        assert "[PASS] agreement" in text
        assert "metrics registry" in text
        assert "task profile" in text

    def test_report_sections_are_optional(self):
        text = run_report(ledger=make_kernel().metrics)
        assert "fault timeline" in text and "workload" not in text


# ----------------------------------------------------------------------
# critical-path edge cases: crashed memories, fused chains, empty traces
# ----------------------------------------------------------------------
def _span(span_id, name, kind, start, end, trace_id=1, attrs=None):
    span = Span(span_id, None, trace_id, name, kind, "p0", start, attrs)
    span.end = end
    return span


class TestCriticalPathEdges:
    def test_empty_trace_is_pure_queueing(self):
        path = critical_path_between([], 0, proposed_at=2.0, decided_at=9.0)
        assert path.queueing == pytest.approx(7.0)
        assert path.message_delays == 0 and path.memory_delays == 0
        assert len(path.segments) == 1

    def test_open_span_from_crashed_memory_is_excluded(self):
        # A memory that crashed mid-operation leaves its span open
        # (end=None); the analyzer must not try to walk through it —
        # the window degrades to queueing instead of crashing.
        hung = Span(1, None, 1, "WriteOp", K_MEMOP, "p0", 1.0)
        assert hung.end is None
        path = critical_path_between([hung], 0, proposed_at=0.0, decided_at=6.0)
        assert path.memory_delays == 0
        assert path.queueing == pytest.approx(6.0)

    def test_fused_chain_span_is_one_tile_with_op_count(self):
        # single-completion semantics: a chain of 3 WRs is ONE span and
        # ONE 2-delay tile, annotated with what it amortized
        chain = _span(1, "BatchOp", K_MEMOP, 1.0, 3.0, attrs={"ops": 3})
        path = critical_path_between([chain], 0, proposed_at=1.0, decided_at=3.0)
        assert path.memory_delays == 2
        (segment,) = path.segments
        assert segment.name == "BatchOp[3]"

    def test_queueing_never_negative(self):
        # overlapping spans that extend past both window edges must not
        # produce negative gaps
        spans = [
            _span(1, "m", K_MSG, -1.0, 2.0),
            _span(2, "w", K_MEMOP, 1.5, 4.0),
        ]
        path = critical_path_between(spans, 0, proposed_at=0.0, decided_at=4.0)
        assert path.queueing >= 0.0
        assert all(s.end >= s.start for s in path.segments)

    def test_chain_annotation_survives_real_batched_run(self):
        from repro.consensus.protected_memory_paxos import PmpConfig

        cluster, runtime = traced_cluster(
            ProtectedMemoryPaxos(PmpConfig(skip_first_attempt=False, batch_chains=True))
        )
        cluster.run(["a", "b", "c"])
        path = critical_path(runtime, ProcessId(0))
        labels = [s.name for s in path.segments]
        assert any("[" in label for label in labels if label != "queue")


# ----------------------------------------------------------------------
# gauge ring bound + dropped counter (obs under long SLO windows)
# ----------------------------------------------------------------------
class TestGaugeRing:
    def test_dropped_counts_scrolled_samples(self):
        registry = MetricsRegistry(series_bound=8)
        g = registry.gauge("depth")
        for i in range(20):
            g.sample(float(i), float(i))
        assert len(g.series) == 8
        assert g.total == 20
        assert g.dropped == 12
        # newest samples win
        assert [v for _t, v in g.series] == [float(i) for i in range(12, 20)]

    def test_bound_must_be_positive(self):
        with pytest.raises(ValueError):
            MetricsRegistry(series_bound=0).gauge("x")

    def test_attach_threads_series_bound(self, kernel):
        runtime = attach(kernel, series_bound=4)
        g = runtime.registry.gauge("x")
        for i in range(10):
            g.sample(float(i), float(i))
        assert len(g.series) == 4 and g.dropped == 6


# ----------------------------------------------------------------------
# flight dumps carry the metrics + SLO state of the run
# ----------------------------------------------------------------------
class TestFlightContext:
    def test_dump_includes_registry_and_slo_snapshots(self):
        from repro.obs.slo import Objective

        cluster, runtime = traced_cluster(ProtectedMemoryPaxos())
        runtime.track_slo([Objective("lat", latency_budget=50.0)])
        cluster.run(["a", "b", "c"])
        dump = runtime.flight.trip("test", cluster.kernel.now)
        assert "metrics" in dump
        assert "slo" in dump
        assert dump["slo"]["objectives"][0]["name"] == "lat"

    def test_dump_without_slo_still_has_metrics(self):
        cluster, runtime = traced_cluster(ProtectedMemoryPaxos())
        cluster.run(["a", "b", "c"])
        dump = runtime.flight.trip("test", cluster.kernel.now)
        assert "metrics" in dump and "slo" not in dump


# ----------------------------------------------------------------------
# chrome sink: counter tracks and fan-out flow arrows
# ----------------------------------------------------------------------
class TestChromeFlowsAndCounters:
    def _batched_trace(self):
        from repro.consensus.protected_memory_paxos import PmpConfig

        buf = io.StringIO()
        cluster, runtime = traced_cluster(
            ProtectedMemoryPaxos(PmpConfig(batch_chains=True))
        )
        runtime.add_sink(ChromeTraceSink(buf))
        runtime.start_sampling(5.0, until=30.0)
        cluster.run(["a", "b", "c"])
        runtime.close()
        return json.loads(buf.getvalue())

    def test_gauges_become_counter_tracks(self):
        events = self._batched_trace()
        counters = [e for e in events if e["ph"] == "C"]
        assert counters
        assert all(e["pid"] == "metrics" and "value" in e["args"] for e in counters)
        assert any(e["name"] == "kernel.queue_depth" for e in counters)

    def test_fanout_legs_flow_into_the_verdict(self):
        events = self._batched_trace()
        starts = [e for e in events if e["ph"] == "s"]
        finishes = [e for e in events if e["ph"] == "f"]
        assert starts and finishes
        # every flow id that finishes was started
        started_ids = {e["id"] for e in starts}
        assert all(e["id"] in started_ids for e in finishes)
        # the verdict binds at its enclosing slice's start
        assert all(e.get("bp") == "e" for e in finishes)


# ----------------------------------------------------------------------
# kernel fan-out verdict point + latency hot-swap
# ----------------------------------------------------------------------
class TestKernelObsSeams:
    def test_single_completion_emits_verdict_span(self):
        from repro.consensus.protected_memory_paxos import PmpConfig

        cluster, runtime = traced_cluster(
            ProtectedMemoryPaxos(PmpConfig(batch_chains=True))
        )
        cluster.run(["a", "b", "c"])
        verdicts = [s for s in runtime.spans if s.name == "fanout.verdict"]
        assert verdicts
        for span in verdicts:
            assert span.attrs["acked"] >= 0
            assert "flow" in span.attrs

    def test_set_latency_recaches_constants(self, kernel):
        from repro.sim.latency import JitteredSynchrony, NominalLatency

        assert kernel._msg_delay == 1.0
        assert kernel.fifo_memory_ops
        kernel.set_latency(JitteredSynchrony())
        assert kernel._msg_delay is None
        assert not kernel.fifo_memory_ops
        kernel.set_latency(NominalLatency())
        assert kernel._msg_delay == 1.0
        assert kernel.fifo_memory_ops

    def test_dynamic_model_can_promise_fifo(self, kernel):
        from repro.sim.latency import JitteredSynchrony

        model = JitteredSynchrony()
        model.fifo_memory_ops = True
        kernel.set_latency(model)
        assert kernel.fifo_memory_ops
