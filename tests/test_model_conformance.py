"""Model conformance: protocols under the strict one-outstanding-op rule.

Section 3 allows each process at most one outstanding operation per memory.
The kernel can enforce this per task; the chain-structured protocols
(Protected Memory Paxos, Disk Paxos, Aligned Paxos) issue exactly one
operation at a time per memory chain and must run unchanged under strict
enforcement.

(The register-polling algorithms — Cheap Quorum's `read_many`, the
broadcast delivery loop — pipeline several register reads per memory in one
logical step, an explicitly documented modeling liberty; see DESIGN.md.)
"""

import pytest

from repro.consensus.aligned_paxos import AlignedPaxos
from repro.consensus.disk_paxos import DiskPaxos
from repro.consensus.protected_memory_paxos import ProtectedMemoryPaxos
from repro.core.cluster import Cluster, ClusterConfig
from repro.failures.plans import FaultPlan


def _run_strict(protocol, faults=None, n=3, m=3, deadline=5000):
    cluster = Cluster(
        protocol, ClusterConfig(n, m, deadline=deadline), faults
    )
    cluster.kernel.config.strict_outstanding = True
    return cluster.run([f"v{p}" for p in range(n)])


class TestStrictOutstanding:
    def test_pmp_conforms(self):
        result = _run_strict(ProtectedMemoryPaxos())
        assert result.all_decided and result.agreed
        assert result.earliest_decision_delay == 2.0

    def test_pmp_with_takeover_conforms(self):
        from repro.consensus.omega import leader_schedule

        cluster = Cluster(
            ProtectedMemoryPaxos(),
            ClusterConfig(
                2, 3, deadline=5000,
                omega=leader_schedule([(0.0, 0), (5.0, 1)]),
            ),
        )
        cluster.kernel.config.strict_outstanding = True
        result = cluster.run(["a", "b"])
        assert result.agreed

    def test_disk_paxos_conforms(self):
        result = _run_strict(DiskPaxos())
        assert result.all_decided and result.agreed
        assert result.earliest_decision_delay == 4.0

    def test_aligned_paxos_conforms(self):
        result = _run_strict(AlignedPaxos())
        assert result.all_decided and result.agreed
        assert result.earliest_decision_delay == 2.0

    def test_pmp_with_memory_crash_conforms(self):
        faults = FaultPlan().crash_memory(1, at=0.0)
        result = _run_strict(ProtectedMemoryPaxos(), faults=faults)
        assert result.all_decided and result.agreed

    def test_sharded_smr_conforms(self):
        # Regression: the replicated log's steady-state phase 2 must stay
        # one-outstanding conformant even though the proposer task is
        # long-lived — a same-instant straggler write from slot N must not
        # collide with slot N+1's write to the same memory.
        from repro.shard import ClosedLoopClient, ShardConfig, ShardedKV, YCSB_A, ZipfianKeys

        service = ShardedKV(ShardConfig(n_shards=2, batch_max=4, seed=5))
        service.kernel.config.strict_outstanding = True
        clients = [
            ClosedLoopClient(client_id=i, n_ops=5, keys=ZipfianKeys(32), mix=YCSB_A)
            for i in range(8)
        ]
        report = service.run_workload(clients)
        assert report.completed_requests == 40

    def test_sharded_smr_conforms_with_memory_crash(self):
        # Under strict enforcement a crashed memory's hung write must not
        # poison later slots' bookkeeping for that memory.
        from repro.shard import ClosedLoopClient, ShardConfig, ShardedKV, YCSB_A, ZipfianKeys
        from repro.types import MemoryId

        service = ShardedKV(ShardConfig(n_shards=2, batch_max=4, seed=5))
        service.kernel.config.strict_outstanding = True
        service.kernel.call_at(
            6.0, lambda: service.kernel.crash_memory(MemoryId(2))
        )
        clients = [
            ClosedLoopClient(client_id=i, n_ops=5, keys=ZipfianKeys(32), mix=YCSB_A)
            for i in range(8)
        ]
        report = service.run_workload(clients)
        assert report.completed_requests == 40


class TestRunSummary:
    def test_summary_mentions_everything(self):
        from repro import run_consensus

        result = run_consensus(ProtectedMemoryPaxos(), 3, 3)
        text = result.summary()
        assert "all decided" in text
        assert "agreement: ok" in text
        assert "validity : ok" in text
        assert "p1: decided" in text
        assert "memory ops" in text

    def test_summary_reports_blocked_run(self):
        from repro import run_consensus

        faults = FaultPlan().crash_memory(0).crash_memory(1)
        result = run_consensus(
            ProtectedMemoryPaxos(), 3, 3, faults=faults, deadline=100
        )
        assert "NOT all decided" in result.summary()
