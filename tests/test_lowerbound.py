"""Theorem 6.1: the lower-bound adversary and who survives it."""

import pytest

from repro.lowerbound import (
    attack_disk_paxos,
    attack_naive_fast,
    attack_protected_memory_paxos,
    solo_fast_delay,
)
from repro.lowerbound.naive_fast import NaiveFastConsensus
from repro.core.cluster import run_consensus
from repro.errors import ConfigurationError


class TestStrawman:
    def test_solo_execution_is_two_deciding(self):
        assert solo_fast_delay() == 2.0

    def test_uncontended_multiprocess_run_agrees(self):
        # Without the adversary the strawman gets lucky (contention is
        # visible) — it is not trivially broken, which is what makes the
        # theorem interesting.
        result = run_consensus(NaiveFastConsensus(), 2, 2, strict_safety=False)
        assert result.agreed

    def test_needs_one_memory_per_process(self):
        with pytest.raises(ConfigurationError):
            run_consensus(NaiveFastConsensus(), 3, 2)


class TestTheAttack:
    def test_strawman_violates_agreement(self):
        report = attack_naive_fast()
        assert report.agreement_violated
        assert len(report.decisions) == 2
        assert set(report.decisions.values()) == {"value-A", "value-B"}

    def test_violation_is_schedule_driven_not_random(self):
        # The construction is deterministic: same report every time.
        first = attack_naive_fast()
        second = attack_naive_fast()
        assert first.decisions == second.decisions
        assert first.violations == second.violations

    def test_longer_write_delays_also_violate(self):
        report = attack_naive_fast(write_delay=500.0)
        assert report.agreement_violated


class TestWhoSurvives:
    def test_protected_memory_paxos_survives(self):
        report = attack_protected_memory_paxos()
        assert not report.agreement_violated
        assert len(set(report.decisions.values())) == 1

    def test_pmp_survival_mechanism_is_the_nak(self):
        """The delayed write is refused: dynamic permissions let the fast
        path detect contention with zero extra delays."""
        report = attack_protected_memory_paxos()
        assert report.fast_path_write_naked

    def test_disk_paxos_survives(self):
        report = attack_disk_paxos()
        assert not report.agreement_violated
        assert len(set(report.decisions.values())) == 1

    def test_survivors_decide_the_contenders_value(self):
        # p0's value was never safely installed; both correct algorithms
        # converge on p1's value.
        for report in (attack_protected_memory_paxos(), attack_disk_paxos()):
            assert set(report.decisions.values()) == {"value-B"}
