"""Recovery under churn: the scenario catalog and the acceptance runs.

The headline run scripts a partitioned-then-healed minority AND a
crashed-then-recovered leader into one consensus instance: both rejoin and
the cluster still agrees.  For the sharded service, one shard's leader
churns (crash + recover) while the untouched shards keep committing, and
the churned shard's replicas converge again after recovery.
"""

import pytest

from repro import (
    ClosedLoopClient,
    FaultScript,
    ProtectedMemoryPaxos,
    ShardConfig,
    ShardedKV,
)
from repro.consensus.omega import crash_aware_omega
from repro.core import scenarios
from repro.core.cluster import Cluster, ClusterConfig


class TestScenarioCatalog:
    def test_partition_minority_rejoins_after_heal(self):
        cluster = scenarios.partition_minority(ProtectedMemoryPaxos(), heal_at=25.0)
        result = cluster.run(["a", "b", "c"])
        assert result.all_decided and result.agreed and result.valid
        # the majority decides while the minority is cut off; the minority
        # only rejoins (through the memories) after the heal
        assert result.metrics.decisions[2].decided_at > 25.0
        assert result.metrics.decisions[0].decided_at < 25.0
        kinds = [record.kind for record in cluster.kernel.metrics.fault_timeline]
        assert kinds == ["partition", "heal"]
        assert cluster.kernel.network.partition_dropped > 0

    def test_crash_recover_leader(self):
        cluster = scenarios.crash_recover_leader(
            ProtectedMemoryPaxos(), crash_at=1.0, recover_at=30.0
        )
        result = cluster.run(["a", "b", "c"])
        assert result.all_decided and result.agreed and result.valid
        # the recovered leader decides after its restart, same value
        assert result.metrics.decisions[0].decided_at > 30.0
        assert cluster.kernel.metrics.downtime_spans("p1") == [(1.0, 30.0)]

    def test_permission_storm_delays_but_never_derails(self):
        storm_end = 0.5 + 5 * 1.5
        cluster = scenarios.permission_storm(
            ProtectedMemoryPaxos(), storm_at=0.5, shots=6, spacing=1.5
        )
        result = cluster.run(["a", "b", "c"])
        assert result.all_decided and result.agreed and result.valid
        records = cluster.kernel.metrics.faults_of("perm_change")
        assert len(records) == 6 * 3 and all(r.detail["ok"] for r in records)
        # every grab steals the region, so the decision lands after the storm
        assert result.metrics.decisions[0].decided_at > storm_end

    def test_rolling_restart_full_window(self):
        cluster = scenarios.rolling_restart(
            ProtectedMemoryPaxos(), first_at=1.0, period=16.0
        )
        cluster.start(["a", "b", "c"])
        cluster.kernel.run(until=60.0)
        metrics = cluster.kernel.metrics
        assert len(metrics.faults_of("crash_proc")) == 3
        assert len(metrics.faults_of("recover_proc")) == 3
        assert not metrics.violations
        assert len(metrics.decisions) == 3
        assert len({record.value for record in metrics.decisions.values()}) == 1

    def test_recovered_process_redecides_same_value(self):
        """A process that decided, crashed, and recovered must not revoke:
        its restarted incarnation re-adopts the same value (a different one
        would raise an AgreementViolation through the strict ledger)."""
        cluster = scenarios.rolling_restart(ProtectedMemoryPaxos())
        cluster.start(["a", "b", "c"])
        cluster.kernel.run(until=80.0)
        assert not cluster.kernel.metrics.violations


class TestAlignedRecoverySafety:
    def test_recovered_aligned_leader_must_not_override_commit(self):
        """Regression: a crashed-and-recovered Aligned Paxos initial leader
        must not re-run the first-attempt phase-1 skip.  Setup: p1 commits
        'b' while p0 is partitioned away; p0 then takes over through the
        memories, adopts and decides 'b' (holding exclusive permission),
        crashes, and recovers.  Pre-fix, the restarted p0 skipped phase 1
        and decided its own input 'a' — an agreement violation the strict
        ledger raises."""
        from repro import AlignedConfig, AlignedPaxos
        from repro.consensus.omega import leader_schedule

        script = FaultScript()
        script.at(0.0).partition({0}, {1, 2}).heal(at=60.0)
        script.at(30.0).crash_process(0).recover(at=50.0)
        cluster = Cluster(
            AlignedPaxos(AlignedConfig(variant="protected")),
            ClusterConfig(3, 3, deadline=60_000),
            script,
        )
        cluster.kernel.omega = leader_schedule([(0.0, 1), (10.0, 0)])
        result = cluster.run(["a", "b", "c"])
        assert result.all_decided and result.agreed and result.valid
        assert result.decided_values == {"b"}


class TestCombinedAcceptance:
    def test_partitioned_minority_and_recovered_leader_both_rejoin(self):
        """The ISSUE's scripted acceptance run, in one timeline: the leader
        crashes mid-attempt and recovers; the minority is partitioned away
        and healed.  Everybody decides one value."""
        script = FaultScript()
        script.at(1.0).crash_process(0).recover(at=30.0)
        script.at(2.0).partition({0, 1}, {2}).heal(at=25.0)
        cluster = Cluster(
            ProtectedMemoryPaxos(),
            ClusterConfig(3, 3, deadline=60_000),
            script,
        )
        cluster.kernel.omega = crash_aware_omega(cluster.kernel)
        result = cluster.run(["a", "b", "c"])
        assert result.all_decided and result.agreed and result.valid
        decisions = result.metrics.decisions
        # the interim leader decided during the churn window...
        assert decisions[1].decided_at < 25.0
        # ...the recovered leader re-adopted after its restart, and the
        # partitioned minority rejoined after the heal
        assert decisions[0].decided_at > 30.0
        assert decisions[2].decided_at > 25.0
        assert len({record.value for record in decisions.values()}) == 1
        timeline = [r.kind for r in cluster.kernel.metrics.fault_timeline]
        assert timeline == ["crash_proc", "partition", "heal", "recover_proc"]


class _PoolKeys:
    """Key distribution drawing only from one shard's key pool."""

    def __init__(self, keys):
        self._keys = list(keys)

    def next_key(self, rng):
        return self._keys[rng.randrange(len(self._keys))]


def _shard_key_pools(service, per_shard=4):
    pools = {g: [] for g in range(service.config.n_shards)}
    index = 0
    while any(len(pool) < per_shard for pool in pools.values()):
        key = f"k{index}"
        index += 1
        shard = service.partitioner.shard_for(key)
        if len(pools[shard]) < per_shard:
            pools[shard].append(key)
    return pools


class TestShardedChurn:
    CRASH_AT = 40.0
    RECOVER_AT = 250.0

    def _run(self):
        script = FaultScript()
        script.at(self.CRASH_AT).crash_process(1).recover(at=self.RECOVER_AT)
        service = ShardedKV(
            ShardConfig(
                n_shards=3,
                n_processes=3,
                batch_max=4,
                seed=7,
                retry_timeout=25.0,
                deadline=5_000.0,
                faults=script,
            )
        )
        assert service.shards_led_by(1) == [1]
        pools = _shard_key_pools(service)
        clients = [
            ClosedLoopClient(client_id=0, n_ops=25, keys=_PoolKeys(pools[0]),
                             think_time=8.0, pid=0),
            ClosedLoopClient(client_id=1, n_ops=25, keys=_PoolKeys(pools[2]),
                             think_time=8.0, pid=2),
            ClosedLoopClient(client_id=2, n_ops=8, keys=_PoolKeys(pools[1]),
                             think_time=5.0, pid=0),
        ]
        samples = {}

        def capture(tag):
            samples[tag] = {
                g: service.machines[(0, g)].applied_count for g in range(3)
            }

        service.kernel.call_at(self.CRASH_AT - 1.0, lambda: capture("pre"))
        service.kernel.call_at(self.RECOVER_AT - 1.0, lambda: capture("down"))
        report = service.run_workload(clients)
        return service, report, samples

    def test_churning_shard_recovers_while_others_serve(self):
        service, report, samples = self._run()
        assert report.ok, "every request must complete despite the churn"
        # the run converges shortly after recovery, not at the deadline
        assert report.elapsed < 1_000.0
        # untouched shards kept committing while the churned leader was down
        assert samples["down"][0] > samples["pre"][0]
        assert samples["down"][2] > samples["pre"][2]
        # the churned shard stalled during the downtime window
        assert samples["down"][1] <= samples["pre"][1] + 1

    def test_churned_replicas_converge_exactly(self):
        service, report, _samples = self._run()
        assert report.ok
        for g in range(3):
            counts = {
                service.machines[(pid, g)].applied_count for pid in range(3)
            }
            stores = {
                tuple(sorted(service.machines[(pid, g)].data.items()))
                for pid in range(3)
            }
            assert len(counts) == 1, f"shard {g} replicas diverged: {counts}"
            assert len(stores) == 1, f"shard {g} stores diverged"

    def test_retries_resume_after_leader_returns(self):
        service, report, _samples = self._run()
        assert report.ok
        # frontends on p1's peers retried into the downtime window
        assert service.frontends[0].retries > 0
        spans = service.kernel.metrics.downtime_spans("p2")
        assert spans == [(self.CRASH_AT, self.RECOVER_AT)]
