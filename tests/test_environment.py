"""ProcessEnv surface: helpers, decision recording, crypto plumbing."""

import pytest

from repro.errors import AgreementViolation
from repro.types import MemoryId, ProcessId

from tests.conftest import env_of, make_kernel, run_single


class TestTopology:
    def test_processes_and_memories_listing(self):
        kernel = make_kernel(4, 5)
        env = env_of(kernel, 1)
        assert env.n_processes == 4 and env.n_memories == 5
        assert env.processes == [ProcessId(p) for p in range(4)]
        assert env.memories == [MemoryId(m) for m in range(5)]

    def test_majority_of_memories(self):
        assert env_of(make_kernel(3, 3), 0).majority_of_memories() == 2
        assert env_of(make_kernel(3, 5), 0).majority_of_memories() == 3
        assert env_of(make_kernel(3, 4), 0).majority_of_memories() == 3

    def test_leader_oracle(self):
        kernel = make_kernel(omega=lambda now: 2 if now >= 5 else 0)
        env = env_of(kernel, 0)
        assert env.leader() == ProcessId(0)
        kernel.now = 6.0
        assert env.leader() == ProcessId(2)


class TestDecisionRecording:
    def test_decide_records_once(self, kernel):
        env = env_of(kernel, 0)

        def gen():
            env.mark_proposed()
            yield env.sleep(3.0)
            env.decide("v")
            assert env.has_decided()
            assert env.decision() == "v"

        run_single(kernel, 0, gen())
        assert kernel.metrics.delays_of(ProcessId(0)) == 3.0

    def test_double_decide_same_value_ok(self, kernel):
        env = env_of(kernel, 0)

        def gen():
            env.decide("v")
            env.decide("v")
            yield env.sleep(1.0)

        run_single(kernel, 0, gen())
        assert kernel.metrics.decided_values() == {"v"}

    def test_conflicting_decide_raises(self, kernel):
        env0, env1 = env_of(kernel, 0), env_of(kernel, 1)

        def first():
            env0.decide("a")
            yield env0.sleep(1.0)

        def second():
            yield env1.sleep(2.0)
            env1.decide("b")

        kernel.spawn(0, "a", first())
        kernel.spawn(1, "b", second())
        with pytest.raises(AgreementViolation):
            kernel.run(until=100)


class TestBroadcastHelper:
    def test_include_self(self, kernel):
        env = env_of(kernel, 0)
        received = []

        def sender():
            yield from env.broadcast("hi", topic="t", include_self=True)

        def self_receiver():
            msg = yield from env.recv(topic="t")
            received.append(msg.src)

        kernel.spawn(0, "send", sender())
        kernel.spawn(0, "recv", self_receiver())
        kernel.run(until=50)
        assert ProcessId(0) in received

    def test_exclude_self(self, kernel):
        env = env_of(kernel, 0)

        def sender():
            yield from env.broadcast("hi", topic="t", include_self=False)

        def self_receiver():
            msg = yield from env.recv(topic="t", timeout=10.0)
            return msg

        kernel.spawn(0, "send", sender())
        task = run_single(kernel, 0, self_receiver())
        assert task.result is None


class TestCryptoPlumbing:
    def test_sign_counts_into_metrics(self, kernel):
        env = env_of(kernel, 0)
        env.sign("x")
        env.sign("y")
        assert kernel.metrics.signatures[ProcessId(0)] == 2

    def test_valid_any(self, kernel):
        env = env_of(kernel, 1)
        signed = env.sign("payload")
        assert env.valid_any(signed)
        assert not env.valid_any("junk")

    def test_keys_are_per_process(self, kernel):
        env0, env1 = env_of(kernel, 0), env_of(kernel, 1)
        assert env0.key is not env1.key
        assert env0.key.pid != env1.key.pid
