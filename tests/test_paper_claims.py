"""The theorem suite: one test per numbered claim in the paper.

This file is the executable summary of the reproduction — each test cites
the claim it checks and exercises it through the public API only.
"""

import pytest

from repro import (
    AlignedPaxos,
    DiskPaxos,
    FastPaxos,
    FastRobust,
    FastRobustConfig,
    FaultPlan,
    MessagePaxos,
    PaxosValueLiar,
    ProtectedMemoryPaxos,
    RobustBackup,
    SilentByzantine,
    run_consensus,
)
from repro.consensus.cheap_quorum import CheapQuorumConfig
from repro.lowerbound import (
    attack_disk_paxos,
    attack_naive_fast,
    attack_protected_memory_paxos,
    solo_fast_delay,
)

_FR = lambda: FastRobust(
    FastRobustConfig(
        cheap_quorum=CheapQuorumConfig(leader_timeout=15.0, unanimity_timeout=25.0)
    )
)


class TestTheorem42And44_RobustBackup:
    """WBA from SWMR registers + signatures at n >= 2f_P+1, m >= 2f_M+1."""

    def test_agreement_with_byzantine_minority(self):
        faults = FaultPlan().make_byzantine(1, PaxosValueLiar("EVIL"))
        result = run_consensus(RobustBackup(), 3, 3, faults=faults, deadline=20_000)
        assert result.all_decided and result.agreed and result.valid
        assert "EVIL" not in result.decided_values

    def test_memory_crash_minority_tolerated(self):
        faults = FaultPlan().crash_memory(0, at=0.0)
        result = run_consensus(RobustBackup(), 3, 3, faults=faults, deadline=20_000)
        assert result.all_decided and result.agreed


class TestLemmaB6_CheapQuorumIsTwoDeciding:
    def test_fast_decision(self):
        result = run_consensus(_FR(), 3, 3, deadline=20_000)
        assert result.metrics.decisions[0].delays == 2.0

    def test_one_signature(self):
        result = run_consensus(_FR(), 3, 3, deadline=20_000)
        assert result.metrics.decisions[0].signatures_at_decision == 1


class TestTheorem49_FastAndRobust:
    """2-deciding WBA at n >= 2f_P+1, m >= 2f_M+1."""

    @pytest.mark.parametrize("n", [3, 5])
    def test_two_deciding_common_case(self, n):
        result = run_consensus(_FR(), n, 3, deadline=20_000)
        assert result.agreed and result.valid
        assert result.earliest_decision_delay == 2.0

    def test_byzantine_fallback_preserves_agreement(self):
        faults = FaultPlan().make_byzantine(2, SilentByzantine())
        result = run_consensus(_FR(), 3, 3, faults=faults, deadline=30_000)
        assert result.all_decided and result.agreed

    def test_memory_crash_tolerated_on_fast_path(self):
        faults = FaultPlan().crash_memory(2, at=0.0)
        result = run_consensus(_FR(), 3, 3, faults=faults, deadline=30_000)
        assert result.earliest_decision_delay == 2.0


class TestTheorem51_ProtectedMemoryPaxos:
    """2-deciding crash consensus at n >= f_P+1, m >= 2f_M+1."""

    @pytest.mark.parametrize("n", [1, 2, 3, 5])
    def test_two_deciding_at_every_n(self, n):
        result = run_consensus(ProtectedMemoryPaxos(), n, 3, deadline=10_000)
        assert result.earliest_decision_delay == 2.0

    def test_n_equals_f_plus_one(self):
        # n=2 tolerates one crash: below the message-passing 2f+1 bound.
        faults = FaultPlan().crash_process(0, at=0.0)
        result = run_consensus(
            ProtectedMemoryPaxos(), 2, 3, faults=faults,
            omega="crash-aware", deadline=10_000,
        )
        assert result.all_decided and result.agreed

    def test_memory_minority(self):
        faults = FaultPlan().crash_memory(0, at=0.0)
        result = run_consensus(
            ProtectedMemoryPaxos(), 3, 3, faults=faults, deadline=10_000
        )
        assert result.earliest_decision_delay == 2.0


class TestSection52_AlignedPaxos:
    """Consensus with any majority of the combined agent set."""

    @pytest.mark.parametrize("fp,fm", [(0, 2), (1, 1), (2, 0)])
    def test_combined_minority(self, fp, fm):
        faults = FaultPlan()
        for pid in range(fp):
            faults.crash_process(2 - pid, at=0.0)
        for mid in range(fm):
            faults.crash_memory(mid, at=0.0)
        result = run_consensus(
            AlignedPaxos(), 3, 3, faults=faults, deadline=10_000
        )
        assert result.all_decided and result.agreed

    def test_two_deciding_common_case(self):
        result = run_consensus(AlignedPaxos(), 3, 3)
        assert result.earliest_decision_delay == 2.0


class TestTheorem61_LowerBound:
    """No 2-deciding consensus from static-permission shared memory."""

    def test_two_deciding_candidate_exists(self):
        assert solo_fast_delay() == 2.0

    def test_candidate_violates_agreement(self):
        assert attack_naive_fast().agreement_violated

    def test_static_permission_survivor_pays_four_delays(self):
        report = attack_disk_paxos()
        assert not report.agreement_violated
        result = run_consensus(DiskPaxos(), 3, 3)
        assert result.earliest_decision_delay >= 4.0

    def test_dynamic_permissions_evade_the_bound(self):
        report = attack_protected_memory_paxos()
        assert not report.agreement_violated
        assert report.fast_path_write_naked


class TestIntroComparisons:
    """Section 1's positioning of the baselines."""

    def test_disk_paxos_resilient_but_slow(self):
        result = run_consensus(DiskPaxos(), 3, 3)
        assert result.earliest_decision_delay >= 4.0

    def test_fast_paxos_fast_but_needs_2f_plus_1(self):
        result = run_consensus(FastPaxos(), 3, 0)
        assert result.earliest_decision_delay == 2.0
        # With a crashed acceptor the fast path is gone (fast quorum = n).
        faults = FaultPlan().crash_process(2, at=0.0)
        degraded = run_consensus(
            FastPaxos(), 3, 0, faults=faults, deadline=5000
        )
        assert (
            degraded.earliest_decision_delay is None
            or degraded.earliest_decision_delay > 2.0
        )

    def test_message_paxos_baseline(self):
        result = run_consensus(MessagePaxos(), 3, 0)
        assert result.earliest_decision_delay == 4.0
