"""The Cheap Quorum revocation race (Lemma 4.6's intersection argument).

The dangerous window: a leader's replicated write races the followers'
permission revocations.  The implementation must guarantee that *if* the
leader decided (clean ACK majority), every aborter's majority read
intersects that ACK majority and salvages the leader's value — and if the
revocation won (any NAK), the leader panics instead of deciding.

We sweep the leader's write-request delay across the panic window with an
adversarial latency model and check the implication in every interleaving.
"""

import pytest

from repro.consensus.base import ConsensusProtocol
from repro.consensus.cheap_quorum import CheapQuorum, CheapQuorumConfig, cq_regions
from repro.core.cluster import Cluster, ClusterConfig
from repro.sim.latency import AdversarialLatency


class _CqProbe(ConsensusProtocol):
    name = "cq-probe"

    def __init__(self, config):
        self.config = config
        self.outcomes = {}

    def regions(self, n, m):
        return cq_regions(n, self.config.leader)

    def tasks(self, env, value):
        def main():
            cq = CheapQuorum(env, self.config)
            outcome = yield from cq.run(value)
            self.outcomes[int(env.pid)] = outcome
            return outcome

        return [("cq", main())]


def _race(write_delay: float, leader_timeout: float = 6.0):
    """Delay only the leader's memory *requests* by *write_delay*; follower
    panic fires at ~leader_timeout, so sweeping the delay moves the write
    across the revocation boundary."""

    def override(kind, actor, peer, now):
        if kind == "mem_req" and int(actor) == 0:
            return write_delay
        return None

    config = CheapQuorumConfig(
        leader_timeout=leader_timeout, unanimity_timeout=15.0, poll=0.5
    )
    probe = _CqProbe(config)
    cluster = Cluster(
        probe,
        ClusterConfig(
            3, 3, latency=AdversarialLatency(override), deadline=3000,
            strict_safety=True,
        ),
    )
    cluster.start(["LEADER-VALUE", "b", "c"])
    cluster.kernel.run(until=3000)
    return probe


class TestRevocationRace:
    @pytest.mark.parametrize(
        "write_delay", [0.5, 2.0, 4.0, 5.5, 6.0, 6.5, 7.0, 8.0, 12.0, 30.0]
    )
    def test_decide_implies_aborters_carry_value(self, write_delay):
        probe = _race(write_delay)
        outcomes = probe.outcomes
        assert len(outcomes) == 3, "every process must decide or abort"
        leader = outcomes[0]
        if leader.decided:
            # Lemma 4.6: every aborter salvages the leader's value.
            for p in (1, 2):
                if not outcomes[p].decided:
                    assert outcomes[p].value == "LEADER-VALUE", (
                        f"write_delay={write_delay}: aborter lost the "
                        "decided value"
                    )
        # Deciders among followers must match the leader value too
        decided_values = {o.value for o in outcomes.values() if o.decided}
        assert len(decided_values) <= 1

    @pytest.mark.parametrize("write_delay", [15.0, 40.0])
    def test_late_write_is_revoked_and_leader_panics(self, write_delay):
        probe = _race(write_delay)
        leader = probe.outcomes[0]
        assert not leader.decided
        assert leader.panicked

    def test_no_interleaving_without_outcome(self):
        # Safety net: across a fine sweep, nobody is ever left undecided
        # AND unaborted (Lemma B.2's decide-or-abort).
        for delay in (5.0, 5.5, 6.0, 6.2, 6.5, 7.0):
            probe = _race(delay)
            assert len(probe.outcomes) == 3, f"stuck at write_delay={delay}"
