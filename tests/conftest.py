"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.mem.layout import MemoryLayout
from repro.mem.permissions import Permission
from repro.mem.regions import RegionSpec
from repro.sim.environment import ProcessEnv
from repro.sim.kernel import Kernel, SimConfig
from repro.types import ProcessId


def open_region(n_processes: int, region_id: str = "r", prefix=("x",)) -> RegionSpec:
    """A region everybody can read and write (handy for kernel tests)."""
    return RegionSpec(region_id, prefix, Permission.open(range(n_processes)))


def make_kernel(
    n_processes: int = 3,
    n_memories: int = 3,
    regions=None,
    **overrides,
) -> Kernel:
    """A kernel with an open layout unless specific regions are given."""
    if regions is None:
        regions = [open_region(n_processes)]
    config = SimConfig(n_processes=n_processes, n_memories=n_memories, **overrides)
    return Kernel(config, MemoryLayout(list(regions)))


def env_of(kernel: Kernel, pid: int) -> ProcessEnv:
    return ProcessEnv(kernel, ProcessId(pid))


def run_single(kernel: Kernel, pid: int, gen, until: float = 1_000.0):
    """Spawn one task and run the kernel; returns the task (with .result)."""
    task = kernel.spawn(pid, "test-task", gen)
    kernel.run(until=until)
    return task


@pytest.fixture
def kernel():
    return make_kernel()


@pytest.fixture
def env(kernel):
    return env_of(kernel, 0)


def pytest_addoption(parser):
    parser.addoption(
        "--seed-sweep",
        type=int,
        default=0,
        metavar="N",
        help=(
            "rerun the trace-hash determinism checks of "
            "test_fault_properties.py / test_read_properties.py across N "
            "seeds in one process (0 = off; the sweep tests skip)"
        ),
    )


@pytest.fixture
def seed_sweep(request) -> int:
    """How many seeds the determinism sweep should cover (0 = disabled)."""
    return int(request.config.getoption("--seed-sweep"))
