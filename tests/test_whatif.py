"""The causal what-if profiler, SLO plane, and differential tracer.

Three planes built on the deterministic kernel:

* ``repro.obs.whatif`` — Coz-style causal profiling by *exact
  counterfactual replay*: wrap the latency model in a
  :class:`LatencyOverride` that virtually speeds up one component, rerun
  the identical seed/schedule, and measure the actual end-to-end impact.
  The headline validation is the paper's own accounting: on a classic
  (unbatched, skip-off) Protected Memory Paxos run the top-ranked
  bottleneck must be the prepare-phase fan-out, and virtually removing
  two-thirds of it must reproduce the 8 -> 4 delay improvement that
  doorbell batching delivered for real.
* ``repro.obs.slo`` — burn-rate objectives over virtual time; breaches
  land in the metrics ledger and must replay deterministically even
  under fault scripts.
* ``repro.obs.diff`` — align two runs' span trees by causal identity
  and attribute the latency delta segment by segment.
"""

from __future__ import annotations

import random

import pytest

from repro.consensus.protected_memory_paxos import PmpConfig, ProtectedMemoryPaxos
from repro.core.cluster import Cluster, ClusterConfig
from repro.errors import ConfigurationError, WhatIfDivergence
from repro.failures.script import FaultScript
from repro.metrics.reporting import run_report
from repro.obs import (
    Experiment,
    LatencyOverride,
    Objective,
    ScaleIssue,
    ScaleLink,
    ScaleMemory,
    WhatIfProfiler,
    attach,
    critical_delta,
    critical_path,
    diff_runs,
    diff_spans,
    issue_experiment,
    link_experiment,
    memory_experiment,
    phase_experiment,
    run_hash,
    span_identities,
)
from repro.obs.slo import SloTracker
from repro.sim.latency import JitteredSynchrony, NominalLatency
from repro.shard.service import ShardConfig, ShardedKV
from repro.shard.workload import ClosedLoopClient, OperationMix, UniformKeys


RNG = random.Random(0)


# ----------------------------------------------------------------------
# LatencyOverride: the replay seam
# ----------------------------------------------------------------------
class TestLatencyOverride:
    def test_identity_override_prices_like_base(self):
        ov = LatencyOverride()
        assert ov.message_delay(0, 1, 0.0, RNG) == 1.0
        assert ov.memory_request_delay(0, 0, 0.0, RNG) == 1.0
        assert ov.memory_response_delay(0, 0, 0.0, RNG) == 1.0
        assert ov.memory_issue_delay(0, 0, 0.0, RNG) == 0.0

    def test_memory_rule_scales_both_legs_of_one_memory(self):
        ov = LatencyOverride(rules=[ScaleMemory(0.5, mid=1)])
        assert ov.memory_request_delay(0, 1, 0.0, RNG) == 0.5
        assert ov.memory_response_delay(0, 1, 0.0, RNG) == 0.5
        # other memories untouched
        assert ov.memory_request_delay(0, 0, 0.0, RNG) == 1.0

    def test_memory_rule_without_mid_scales_all(self):
        ov = LatencyOverride(rules=[ScaleMemory(2.0)])
        for mid in range(3):
            assert ov.memory_request_delay(0, mid, 0.0, RNG) == 2.0

    def test_link_rule_is_directional(self):
        ov = LatencyOverride(rules=[ScaleLink(0.25, src=0, dst=2)])
        assert ov.message_delay(0, 2, 0.0, RNG) == 0.25
        assert ov.message_delay(2, 0, 0.0, RNG) == 1.0
        assert ov.message_delay(0, 1, 0.0, RNG) == 1.0

    def test_issue_rule_scales_per_wr_cost(self):
        class ChargedIssue(NominalLatency):
            constant_issue_delay = 0.4

        ov = LatencyOverride(base=ChargedIssue(), rules=[ScaleIssue(0.5)])
        assert ov.memory_issue_delay(0, 0, 0.0, RNG) == pytest.approx(0.2)

    def test_stacked_rules_multiply(self):
        ov = LatencyOverride(rules=[ScaleMemory(0.5), ScaleMemory(0.5, mid=0)])
        assert ov.memory_request_delay(0, 0, 0.0, RNG) == 0.25
        assert ov.memory_request_delay(0, 1, 0.0, RNG) == 0.5

    def test_factor_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            ScaleMemory(0.0)
        with pytest.raises(ConfigurationError):
            ScaleLink(-1.0)

    def test_fifo_promise_without_phase_rules(self):
        # Constant-base, no phase rules: order-preserving scaling keeps
        # the FIFO queue-pair property (and the fused-read code paths).
        assert LatencyOverride(rules=[ScaleMemory(0.5)]).fifo_memory_ops
        assert not LatencyOverride(
            rules=[phase_experiment("pmp.prepare", 0.5).rules[0]]
        ).fifo_memory_ops
        assert not LatencyOverride(base=JitteredSynchrony()).fifo_memory_ops


# ----------------------------------------------------------------------
# the profiler on classic PMP: the acceptance scenario
# ----------------------------------------------------------------------
def classic_pmp(latency):
    """Skip-off, unbatched PMP: the paper's full two-phase slow path."""
    cluster = Cluster(
        ProtectedMemoryPaxos(PmpConfig(skip_first_attempt=False, batch_chains=False)),
        ClusterConfig(3, 3, latency=latency),
    )
    attach(cluster.kernel)
    return cluster.run(["a", "b", "c"])


class TestWhatIfProfiler:
    @pytest.fixture(scope="class")
    def report(self):
        prof = WhatIfProfiler(classic_pmp, check_determinism=True)
        experiments = [
            phase_experiment("pmp.prepare", 1 / 3, name="prepare fan-out"),
            phase_experiment("pmp.phase2", 0.5, name="phase-2 write"),
            link_experiment(0.5, name="all links"),
            memory_experiment(0, 0.5, name="memory 0"),
            issue_experiment(0.5, name="issue cost"),
        ]
        return prof.rank(experiments, k=3)

    def test_classic_baseline_is_eight_delays(self, report):
        assert report.baseline.measurement.earliest_delay == pytest.approx(8.0)

    def test_top_bottleneck_is_prepare_fanout(self, report):
        top = report.top
        assert top is not None
        assert top.experiment.name == "prepare fan-out"

    def test_prepare_override_reproduces_batching_win(self, report):
        # PR 8's doorbell batching collapsed prepare's three sequential
        # ops (6 delays) into one fused chain (2 delays): 8 -> 4 total.
        # The counterfactual must predict exactly that.
        top = report.top
        assert top.before == pytest.approx(8.0)
        assert top.after == pytest.approx(4.0)
        assert top.speedup == pytest.approx(2.0)

    def test_critical_path_recomposition(self, report):
        phases = report.baseline.measurement.phase_delays
        assert phases["pmp.prepare"]["mem"] == pytest.approx(6.0)
        assert phases["pmp.phase2"]["mem"] == pytest.approx(2.0)
        assert phases["pmp.prepare"]["queue"] >= 0.0

    def test_greedy_ranking_stacks(self, report):
        # Round two runs on top of the prepare override; the next win is
        # the phase-2 write, taking the stacked run from 4 to 3 delays.
        assert len(report.ranked) >= 2
        second = report.ranked[1]
        assert second.experiment.name == "phase-2 write"
        assert second.before == pytest.approx(4.0)
        assert second.after == pytest.approx(3.0)

    def test_summary_mentions_top_experiment(self, report):
        text = report.summary()
        assert "prepare fan-out" in text
        assert "baseline" in text

    def test_replay_is_hash_deterministic(self):
        # check_determinism=True replays every experiment and compares
        # trace hashes; divergence would raise WhatIfDivergence.
        prof = WhatIfProfiler(classic_pmp, check_determinism=True)
        run1 = prof.run([], name="a")
        run2 = prof.run([], name="b")
        assert run1.measurement.trace_hash == run2.measurement.trace_hash

    def test_divergence_error_exists(self):
        # the error type is part of the public surface (callers catch it)
        assert issubclass(WhatIfDivergence, Exception)

    def test_compare_returns_all_results(self):
        prof = WhatIfProfiler(classic_pmp)
        results = prof.compare(
            [
                phase_experiment("pmp.prepare", 1 / 3),
                memory_experiment(None, 0.5, name="all memories"),
            ]
        )
        assert len(results) == 2
        assert all(r.before == pytest.approx(8.0) for r in results)
        # slowing nothing down: every experiment here is a speedup
        assert all(r.improvement >= 0.0 for r in results)

    def test_slowdown_experiment_shows_negative_improvement(self):
        prof = WhatIfProfiler(classic_pmp)
        (result,) = prof.compare(
            [Experiment("slow memories", (ScaleMemory(2.0),))]
        )
        assert result.after > result.before
        assert result.improvement < 0.0

    def test_run_hash_stable_across_identical_runs(self):
        def run():
            cluster = Cluster(
                ProtectedMemoryPaxos(),
                ClusterConfig(3, 3),
            )
            attach(cluster.kernel)
            cluster.run(["a", "b", "c"])
            return run_hash(cluster.kernel)

        assert run() == run()


# ----------------------------------------------------------------------
# SLO plane: deterministic breaches under chaos
# ----------------------------------------------------------------------
LATENCY_SLO = Objective(
    "commit-latency",
    latency_budget=40.0,
    target=0.9,
    window=50.0,
    long_window=150.0,
    burn_threshold=2.0,
)


def chaos_service():
    script = FaultScript()
    script.at(60.0).crash_process(0).recover(at=160.0)
    cfg = ShardConfig(
        n_shards=2,
        n_processes=3,
        n_memories=3,
        seed=7,
        faults=script,
        slo=(LATENCY_SLO,),
    )
    service = ShardedKV(cfg)
    runtime = attach(service.kernel)
    clients = [
        ClosedLoopClient(
            client_id=i,
            n_ops=30,
            keys=UniformKeys(40),
            mix=OperationMix(read_fraction=0.3),
        )
        for i in range(6)
    ]
    report = service.run_workload(clients, deadline=2000.0)
    return service, runtime, report


class TestSloPlane:
    def test_objective_validation(self):
        with pytest.raises(ConfigurationError):
            Objective("empty")  # needs a budget or an availability target
        with pytest.raises(ConfigurationError):
            Objective("bad-target", latency_budget=10.0, target=1.5)
        with pytest.raises(ConfigurationError):
            Objective("bad-windows", latency_budget=10.0, window=100.0, long_window=50.0)

    def test_chaos_breach_fires_and_recovers(self):
        service, runtime, _ = chaos_service()
        timeline = service.kernel.metrics.slo_timeline
        kinds = [r.kind for r in timeline]
        assert "slo_breach" in kinds
        assert "slo_recover" in kinds
        assert runtime.slo.total_breaches() >= 1
        # breach strictly after the crash, recovery after the breach
        breach = next(r for r in timeline if r.kind == "slo_breach")
        recover = next(r for r in timeline if r.kind == "slo_recover")
        assert breach.time > 60.0
        assert recover.time > breach.time
        # recovered by the end of the run
        assert runtime.slo.breached() == []

    def test_chaos_breaches_are_deterministic(self):
        s1, _, _ = chaos_service()
        s2, _, _ = chaos_service()
        t1 = [(r.time, r.kind, r.subject) for r in s1.kernel.metrics.slo_timeline]
        t2 = [(r.time, r.kind, r.subject) for r in s2.kernel.metrics.slo_timeline]
        assert t1 == t2

    def test_breaches_appear_in_run_report(self):
        service, runtime, report = chaos_service()
        text = run_report(report, service.kernel.metrics, runtime, title="chaos")
        assert "slo plane" in text
        assert "slo timeline" in text
        assert "slo_breach" in text
        assert "commit-latency" in text

    def test_burn_gauge_sampled(self):
        _, runtime, _ = chaos_service()
        gauges = {g.name for g in runtime.registry.gauges()}
        assert "slo.burn" in gauges

    def test_quiet_run_never_breaches(self):
        cfg = ShardConfig(
            n_shards=2, n_processes=3, n_memories=3, seed=3, slo=(LATENCY_SLO,)
        )
        service = ShardedKV(cfg)
        runtime = attach(service.kernel)
        clients = [
            ClosedLoopClient(client_id=i, n_ops=15, keys=UniformKeys(20))
            for i in range(4)
        ]
        service.run_workload(clients, deadline=1500.0)
        assert service.kernel.metrics.slo_timeline == []
        assert runtime.slo.total_breaches() == 0

    def test_availability_objective_tracks_fallbacks(self):
        # Drive the availability burn directly through the ledger: a
        # burst of read fallbacks against a 99.9% objective must breach.
        cfg = ShardConfig(n_shards=2, n_processes=3, n_memories=3, seed=5)
        service = ShardedKV(cfg)
        runtime = attach(service.kernel)
        obj = Objective(
            "read-availability",
            availability=0.999,
            window=50.0,
            long_window=100.0,
            burn_threshold=2.0,
        )
        tracker = SloTracker(runtime, [obj])
        ledger = service.kernel.metrics
        for _ in range(90):
            ledger.count_read(0, "lease")
        tracker.evaluate(10.0)
        assert tracker.breached() == []
        for _ in range(10):
            ledger.count_read_fallback(0, "lease")
        tracker.evaluate(60.0)
        assert tracker.breached() == ["read-availability"]

    def test_pressure_reports_shard_scoped_burns(self):
        cfg = ShardConfig(n_shards=2, n_processes=3, n_memories=3, seed=5)
        service = ShardedKV(cfg)
        runtime = attach(service.kernel)
        obj = Objective(
            "shard0-latency", latency_budget=5.0, target=0.9, shard=0, window=50.0
        )
        tracker = SloTracker(runtime, [obj])
        ledger = service.kernel.metrics
        for latency in (50.0, 60.0, 70.0):
            ledger.record_shard_latency(0, 10.0, latency)
        tracker.evaluate(20.0)
        pressure = tracker.pressure()
        assert 0 in pressure
        assert pressure[0] > 2.0
        assert 1 not in pressure


# ----------------------------------------------------------------------
# differential tracing
# ----------------------------------------------------------------------
def pmp_run(batch_chains: bool):
    cluster = Cluster(
        ProtectedMemoryPaxos(
            PmpConfig(skip_first_attempt=False, batch_chains=batch_chains)
        ),
        ClusterConfig(3, 3),
    )
    runtime = attach(cluster.kernel)
    cluster.run(["a", "b", "c"])
    return cluster, runtime


class TestTraceDiff:
    def test_identical_runs_diff_to_zero(self):
        _, a = pmp_run(False)
        _, b = pmp_run(False)
        diff = diff_runs(a, b)
        assert diff.total_delta == pytest.approx(0.0)
        assert diff.only_a == []
        assert diff.only_b == []
        assert all(d.delta == pytest.approx(0.0) for d in diff.matched)

    def test_classic_vs_batched_attributes_the_win(self):
        _, classic = pmp_run(False)
        _, batched = pmp_run(True)
        diff = diff_runs(classic, batched)
        # batching is strictly faster: matched spans shrink overall
        assert diff.total_delta < 0.0
        by_name = diff.by_name()
        # the prepare phase itself shrinks...
        assert by_name[("phase", "pmp.prepare")]["delta"] < 0.0
        # ...because individual WriteOps are replaced by fused BatchOps:
        # structural churn, not matched-span churn
        assert by_name[("memop", "WriteOp")]["only_a"] > 0
        assert by_name[("memop", "BatchOp")]["only_b"] > 0

    def test_summary_renders(self):
        _, classic = pmp_run(False)
        _, batched = pmp_run(True)
        text = diff_runs(classic, batched).summary(limit=5)
        assert "trace diff" in text
        assert "pmp.prepare" in text

    def test_critical_delta_localizes_to_prepare(self):
        _, classic = pmp_run(False)
        _, batched = pmp_run(True)
        delta = critical_delta(critical_path(classic, 0), critical_path(batched, 0))
        assert delta["pmp.prepare"]["mem"] == pytest.approx(-4.0)
        assert delta.get("pmp.phase2", {"mem": 0.0})["mem"] == pytest.approx(0.0)

    def test_span_identities_are_path_qualified(self):
        _, runtime = pmp_run(False)
        spans = runtime.finished
        idents = span_identities(spans)
        assert len(idents) == len(spans)
        # identity = (path of (kind, name) pairs from root, ordinal)
        path, ordinal = next(iter(idents.values()))
        assert isinstance(ordinal, int)
        assert all(len(step) == 2 for step in path)

    def test_diff_spans_marks_structural_difference(self):
        _, a = pmp_run(False)
        spans = list(a.finished)
        diff = diff_spans(spans, spans[: len(spans) // 2])
        assert diff.only_a  # the dropped half is structural-only in A
