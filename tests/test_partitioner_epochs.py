"""Versioned hash rings: staging, diffs, cache hygiene, split stability."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.shard.partitioner import (
    CIRCLE,
    ConsistentHashPartitioner,
    HashRing,
    ring_diff,
)


class TestRingBasics:
    def test_deterministic_across_instances(self):
        a = ConsistentHashPartitioner(4)
        b = ConsistentHashPartitioner(4)
        assert [a.shard_for(f"k{i}") for i in range(300)] == [
            b.shard_for(f"k{i}") for i in range(300)
        ]

    def test_identical_rings_have_empty_diff(self):
        a = HashRing(0, range(4), 64, "")
        b = HashRing(1, range(4), 64, "")
        diff = ring_diff(a, b)
        assert diff.intervals == ()
        assert diff.moved_fraction == 0.0

    def test_owner_of_matches_shard_for_at_boundaries(self):
        ring = HashRing(0, range(3), 16, "")
        for point in ring._points[:10]:
            assert ring.owner_of(point) in ring.shards

    def test_stage_requires_monotonic_versions(self):
        partitioner = ConsistentHashPartitioner(2)
        partitioner.stage(1, [0, 1, 2])
        with pytest.raises(ConfigurationError):
            partitioner.stage(1, [0, 1, 3])  # same version, different shards
        with pytest.raises(ConfigurationError):
            partitioner.stage(0, [0, 1, 2, 3])  # not newest
        # idempotent re-stage of the same shard set is fine (coordinator retry)
        diff = partitioner.stage(1, [0, 1, 2])
        assert diff.new_version == 1

    def test_activate_requires_staged_ring(self):
        partitioner = ConsistentHashPartitioner(2)
        with pytest.raises(ConfigurationError):
            partitioner.activate(3)

    def test_versioned_lookup_sees_both_rings(self):
        partitioner = ConsistentHashPartitioner(2)
        partitioner.stage(1, [0, 1, 2])
        keys = [f"key{i}" for i in range(500)]
        future_owners = {k: partitioner.shard_for(k, version=1) for k in keys}
        assert any(owner == 2 for owner in future_owners.values())
        # routing still answers from ring 0
        assert all(partitioner.shard_for(k) in (0, 1) for k in keys)
        partitioner.activate(1)
        assert all(partitioner.shard_for(k) == future_owners[k] for k in keys)


class TestCacheHygiene:
    """The satellite fix: the memo is ring-keyed and bounded."""

    def test_cache_invalidated_by_activation(self):
        partitioner = ConsistentHashPartitioner(2)
        keys = [f"key{i}" for i in range(400)]
        before = {k: partitioner.shard_for(k) for k in keys}  # warm the memo
        partitioner.stage(1, [0, 1, 2])
        partitioner.activate(1)
        after = {k: partitioner.shard_for(k) for k in keys}
        moved = [k for k in keys if before[k] != after[k]]
        assert moved, "a 2->3 split must move some keys"
        # every lookup matches a fresh partitioner built on the same ring:
        # stale memo entries would leak pre-split owners here
        fresh = ConsistentHashPartitioner(3)
        fresh._rings[0] = partitioner.ring(1)
        fresh._current = partitioner.ring(1)
        assert all(after[k] == fresh.shard_for(k) for k in keys)

    def test_cache_is_bounded(self):
        partitioner = ConsistentHashPartitioner(2, cache_max=64)
        for i in range(1000):
            partitioner.shard_for(f"key{i}")
        assert len(partitioner._cache) <= 64
        # overflow keys are still answered correctly, just not memoised
        assert partitioner.shard_for("key999") == partitioner.ring().shard_for("key999")

    def test_cache_hit_returns_same_owner(self):
        partitioner = ConsistentHashPartitioner(4)
        cold = partitioner.shard_for("alpha")
        assert partitioner.shard_for("alpha") == cold  # memoised path


class TestDiff:
    def test_split_moves_only_to_the_new_shard(self):
        partitioner = ConsistentHashPartitioner(4)
        diff = partitioner.stage(1, [0, 1, 2, 3, 4])
        assert diff.pairs()  # something moves
        assert all(new == 4 for _old, new in diff.pairs())

    def test_merge_moves_only_from_the_victim(self):
        partitioner = ConsistentHashPartitioner(4)
        diff = partitioner.stage(1, [0, 1, 3])  # retire shard 2
        assert all(old == 2 for old, _new in diff.pairs())
        assert all(new in (0, 1, 3) for _old, new in diff.pairs())

    def test_movement_of_agrees_with_owner_comparison(self):
        partitioner = ConsistentHashPartitioner(3)
        diff = partitioner.stage(1, [0, 1, 2, 3])
        for i in range(800):
            key = f"key{i}"
            old = partitioner.shard_for(key, version=0)
            new = partitioner.shard_for(key, version=1)
            movement = diff.movement_of(key)
            if old == new:
                assert movement is None
            else:
                assert movement == (old, new)

    def test_moved_fraction_tracks_interval_mass(self):
        partitioner = ConsistentHashPartitioner(2)
        diff = partitioner.stage(1, [0, 1, 2])
        total = sum((hi - lo) % CIRCLE for lo, hi, _o, _n in diff.intervals)
        assert diff.moved_fraction == pytest.approx(total / CIRCLE)
        assert 0.0 < diff.moved_fraction < 1.0


@settings(max_examples=25, deadline=None)
@given(
    n_shards=st.integers(min_value=2, max_value=6),
    sample_seed=st.integers(min_value=0, max_value=2**16),
)
def test_split_property(n_shards, sample_seed):
    """Splitting n -> n+1 moves ~1/(n+1) of a sampled keyspace, always to
    the new shard, and never moves a key between two unaffected shards."""
    import random

    rng = random.Random(sample_seed)
    partitioner = ConsistentHashPartitioner(n_shards, vnodes=64)
    new_shard = n_shards  # ids are dense from boot
    diff = partitioner.stage(1, list(range(n_shards)) + [new_shard])
    keys = [f"key-{rng.randrange(10**9)}" for _ in range(1500)]
    moved = 0
    for key in keys:
        old = partitioner.shard_for(key, version=0)
        new = partitioner.shard_for(key, version=1)
        if old != new:
            moved += 1
            # a key only ever moves TO the newly added shard — never
            # between two shards untouched by the split
            assert new == new_shard, (key, old, new)
    fraction = moved / len(keys)
    expected = 1.0 / (n_shards + 1)
    # vnode placement is random-ish; allow generous slack around 1/(n+1)
    assert 0.25 * expected <= fraction <= 2.5 * expected, (fraction, expected)
    # and the analytic interval mass agrees with the sampled rate
    assert abs(diff.moved_fraction - fraction) < 0.12
