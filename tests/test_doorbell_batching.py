"""Doorbell batching: fused op chains and single-completion fan-outs.

The chain contract (``mem.operations.BatchOp`` + ``mem.memory._batch``):
sub-ops apply in order, atomically at the chain's arrival instant; the
first NAK aborts the unapplied tail and reports the failing index — RDMA
work-request-chain error semantics.  The pricing contract
(``sim.latency`` + ``sim.kernel``): a chain costs one request leg plus
per-WR issue increments (nominally zero) plus one response leg — N ops,
two delays.  The fan-out contract (``OpFanoutEffect`` +
``sim.futures.FanoutState``): one posted effect, one wake at the verdict.
"""

import hashlib

import pytest

from repro.errors import PermissionError_
from repro.mem.operations import (
    BatchOp,
    ChangePermissionOp,
    ReadOp,
    SnapshotOp,
    WriteOp,
)
from repro.mem.permissions import Permission, exclusive_grab_policy
from repro.mem.regions import RegionSpec
from repro.rdma.protection_domain import ProtectionDomain
from repro.rdma.verbs import RdmaNic
from repro.types import ChainAbort, MemoryId, ProcessId, is_bottom

from tests.conftest import env_of, make_kernel, run_single


def _fenced_kernel(**overrides):
    """An open region plus an exclusive-writer region p1 holds."""
    regions = [
        RegionSpec("open", ("o",), Permission.open(range(3))),
        RegionSpec(
            "fenced",
            ("f",),
            Permission.exclusive_writer(0, range(3)),
            legal_change=exclusive_grab_policy(range(3)),
        ),
    ]
    return make_kernel(3, 3, regions=regions, **overrides)


class TestChainSemantics:
    def test_chain_applies_in_order(self, kernel):
        env = env_of(kernel, 0)

        def gen():
            result = yield from env.batch(
                0,
                (
                    WriteOp("r", ("x", "k"), "first"),
                    WriteOp("r", ("x", "k"), "second"),
                    ReadOp("r", ("x", "k")),
                ),
            )
            return result

        task = run_single(kernel, 0, gen())
        result = task.result
        assert result.ok
        # ACK value = per-WR values in chain order; the read sees the
        # LATER of the two writes — in-order apply.
        assert result.value[2] == "second"
        assert kernel.memories[0].peek(("x", "k")) == "second"

    def test_chain_costs_one_round(self, kernel):
        env = env_of(kernel, 0)

        def gen():
            yield from env.write_batch(
                0, [("r", ("x", str(i)), i) for i in range(8)]
            )
            return env.now

        task = run_single(kernel, 0, gen())
        # 8 WRs, one doorbell: request + 8×issue(=0) + response = 2.0,
        # exactly one single op's round trip.
        assert task.result == 2.0

    def test_read_batch_returns_values_in_request_order(self, kernel):
        env = env_of(kernel, 0)

        def gen():
            yield from env.write_batch(
                0, [("r", ("x", "a"), 10), ("r", ("x", "b"), 20)]
            )
            result = yield from env.read_batch(
                0, [("r", ("x", "b")), ("r", ("x", "a"))]
            )
            return result.value

        task = run_single(kernel, 0, gen())
        assert task.result == (20, 10)

    def test_first_nak_aborts_tail_and_reports_index(self):
        kernel = _fenced_kernel()
        env = env_of(kernel, 1)  # p2 may not write the fenced region

        def gen():
            result = yield from env.batch(
                0,
                (
                    WriteOp("open", ("o", "before"), 1),
                    WriteOp("fenced", ("f", "blocked"), 2),
                    WriteOp("open", ("o", "after"), 3),
                ),
            )
            return result

        task = run_single(kernel, 1, gen())
        result = task.result
        assert not result.ok
        abort = result.value
        assert isinstance(abort, ChainAbort)
        assert abort.failed_index == 1
        assert len(abort.partial) == 1  # only WR 0 completed
        memory = kernel.memories[0]
        assert memory.peek(("o", "before")) == 1  # applied before the NAK
        assert is_bottom(memory.peek(("f", "blocked")))
        assert is_bottom(memory.peek(("o", "after")))  # flushed tail

    def test_revocation_between_post_and_arrival_aborts_chain(self):
        """p1 posts a chain while p2's permission grab is in flight and
        arrives first: the chain must abort AT THE MEMORY, leaving the
        tail unapplied — asserted on the registers, not the reply."""
        kernel = _fenced_kernel()
        env0 = env_of(kernel, 0)
        env1 = env_of(kernel, 1)
        grab = Permission.exclusive_writer(1, range(3))

        def usurper():
            result = yield from env1.change_permission(0, "fenced", grab)
            assert result.ok

        def leader():
            yield env0.sleep(0.5)  # chain arrives at 1.5, grab at 1.0
            result = yield from env0.batch(
                0,
                (
                    WriteOp("open", ("o", "head"), "landed"),
                    WriteOp("fenced", ("f", "slot"), "stale"),
                    WriteOp("open", ("o", "tail"), "flushed"),
                ),
            )
            return result

        kernel.spawn(ProcessId(1), "usurper", usurper())
        task = kernel.spawn(ProcessId(0), "leader", leader())
        kernel.run(until=100.0)
        result = task.result
        assert not result.ok and result.value.failed_index == 1
        memory = kernel.memories[0]
        assert memory.peek(("o", "head")) == "landed"
        assert is_bottom(memory.peek(("f", "slot")))  # fenced write refused
        assert is_bottom(memory.peek(("o", "tail")))  # tail flushed with it

    def test_chains_do_not_nest(self):
        inner = BatchOp((WriteOp("r", ("x", "k"), 1),))
        with pytest.raises(ValueError):
            BatchOp((inner,))

    def test_chain_footprint_is_region_union(self):
        chain = BatchOp(
            (
                WriteOp("a", ("a", 1), 0),
                ReadOp("b", ("b", 2)),
                WriteOp("a", ("a", 3), 0),
            )
        )
        assert chain.regions == ("a", "b")

    def test_chain_counts_one_batch_many_ops(self, kernel):
        env = env_of(kernel, 0)

        def gen():
            yield from env.write_batch(
                0, [("r", ("x", str(i)), i) for i in range(5)]
            )

        run_single(kernel, 0, gen())
        assert kernel.memories[0].counts.batches == 1
        # The ledger prices sub-ops individually (A/B comparability with
        # the unbatched path), not one opaque BatchOp.
        assert kernel.metrics.mem_ops[ProcessId(0), "WriteOp"] == 5
        assert (ProcessId(0), "BatchOp") not in kernel.metrics.mem_ops


class TestSingleCompletionFanout:
    def test_fanout_wakes_once_at_majority(self, kernel):
        env = env_of(kernel, 0)

        def gen():
            state = yield env.fanout_to_all(
                lambda mid: WriteOp("r", ("x", "k"), int(mid)), need=2
            )
            return (env.now, state.done, state.acked)

        task = run_single(kernel, 0, gen())
        now, done, acked = task.result
        assert now == 2.0  # one round; the verdict needs no extra waits
        assert done >= 2 and acked >= 2

    def test_ack_counting_short_circuits_on_naks(self):
        kernel = _fenced_kernel()
        env = env_of(kernel, 1)  # p2: every fenced write NAKs

        def gen():
            state = yield env.fanout_to_all(
                lambda mid: WriteOp("fenced", ("f", "k"), 0),
                need=2,
                count_acks=True,
                spare_naks=1,
            )
            return (state.acked, state.naked)

        task = run_single(kernel, 1, gen())
        acked, naked = task.result
        assert acked == 0
        assert naked == 2  # woke as soon as a majority became impossible

    def test_late_completions_still_recorded_without_rewake(self, kernel):
        env = env_of(kernel, 0)

        def gen():
            state = yield env.fanout_to_all(
                lambda mid: WriteOp("r", ("x", "k"), 1), need=1
            )
            woke_at = env.now
            yield env.sleep(50.0)  # let the stragglers land
            return (woke_at, state.done, state.fired)

        task = run_single(kernel, 0, gen())
        woke_at, done, fired = task.result
        assert woke_at == 2.0
        assert done == 3  # all results filed into the shared state
        assert fired is True

    def test_fanout_of_chains(self, kernel):
        env = env_of(kernel, 0)
        chain = BatchOp(
            (WriteOp("r", ("x", "s"), 7), WriteOp("r", ("x", "w"), 1))
        )

        def gen():
            state = yield env.fanout_to_all(lambda mid: chain, need=2)
            return (env.now, state.acked)

        task = run_single(kernel, 0, gen())
        now, acked = task.result
        assert now == 2.0 and acked >= 2
        for memory in kernel.memories:
            assert memory.peek(("x", "s")) == 7
            assert memory.peek(("x", "w")) == 1


class TestWrBatchFacade:
    def _setup(self):
        regions = [
            RegionSpec("buf", ("buf",), Permission.swmr(0, range(3))),
            RegionSpec("shared", ("shared",), Permission.open(range(3))),
        ]
        kernel = make_kernel(3, 2, regions=regions)
        nic = RdmaNic(env_of(kernel, 0))
        pd = nic.alloc_pd()
        qp = nic.create_qp(pd, ProcessId(1))
        return kernel, nic, pd, qp

    def test_finish_rings_one_doorbell(self):
        kernel, nic, pd, qp = self._setup()
        mr = pd.register(0, "shared", ("shared",), access="read-write")

        def gen():
            batch = nic.begin_batch(qp)
            batch.post_write(mr, ("shared", "a"), 1)
            batch.post_write(mr, ("shared", "b"), 2)
            batch.post_read(mr, ("shared", "a"))
            result = yield from batch.finish()
            return (env_now(), result)

        def env_now():
            return nic.env.now

        task = run_single(kernel, 0, gen())
        now, result = task.result
        assert now == 2.0  # three WRs, one completion, one round
        assert result.ok and result.value[2] == 1
        assert kernel.memories[0].counts.batches == 1

    def test_empty_chain_rejected(self):
        kernel, nic, pd, qp = self._setup()
        with pytest.raises(ValueError):
            list(nic.begin_batch(qp).finish())

    def test_chain_may_not_span_memories(self):
        kernel, nic, pd, qp = self._setup()
        mr0 = pd.register(0, "shared", ("shared",), access="read-write")
        mr1 = pd.register(1, "shared", ("shared",), access="read-write")
        batch = nic.begin_batch(qp)
        batch.post_write(mr0, ("shared", "a"), 1)
        with pytest.raises(PermissionError_):
            batch.post_write(mr1, ("shared", "b"), 2)

    def test_access_level_checked_at_post_time(self):
        kernel, nic, pd, qp = self._setup()
        mr = pd.register(0, "shared", ("shared",), access="read")
        batch = nic.begin_batch(qp)
        with pytest.raises(PermissionError_):
            batch.post_write(mr, ("shared", "a"), 1)

    def test_read_array_wr(self):
        kernel, nic, pd, qp = self._setup()
        mr = pd.register(0, "shared", ("shared",), access="read-write")

        def gen():
            setup = nic.begin_batch(qp)
            setup.post_write(mr, ("shared", "a"), 1).post_write(
                mr, ("shared", "b"), 2
            )
            yield from setup.finish()
            batch = nic.begin_batch(qp).post_read_array(mr)
            result = yield from batch.finish()
            return result.value[0]

        task = run_single(kernel, 0, gen())
        assert task.result == {("shared", "a"): 1, ("shared", "b"): 2}


class TestBatchedChaosDeterminism:
    """Trace-hash determinism of a batched quorum-read chaos run: the
    fused chains and single-completion fan-outs must land in the schedule
    as reproducibly as the per-op paths they replaced."""

    def _run(self, seed: int):
        from repro.shard import ClosedLoopClient, ShardConfig, ShardedKV
        from repro.shard.workload import UniformKeys, YCSB_B

        service = ShardedKV(
            ShardConfig(
                n_shards=2,
                batch_max=4,
                seed=seed,
                trace=True,
                read_mode="quorum",
                deadline=100_000.0,
            )
        )
        service.kernel.call_at(
            40.0, lambda: service.kernel.crash_memory(MemoryId(2))
        )
        clients = [
            ClosedLoopClient(
                client_id=i, n_ops=4, keys=UniformKeys(16), mix=YCSB_B
            )
            for i in range(6)
        ]
        report = service.run_workload(clients)
        return service, report

    def _hash(self, service) -> str:
        kernel = service.kernel
        digest = hashlib.sha256()
        for event in kernel.tracer.events:
            digest.update(str(event).encode())
        digest.update(
            (
                f"ops={sorted(kernel.metrics.mem_ops.items())} "
                f"pushed={kernel.queue.pushed} now={kernel.now}"
            ).encode()
        )
        return digest.hexdigest()

    def test_same_seed_same_schedule(self):
        first, first_report = self._run(seed=42)
        second, second_report = self._run(seed=42)
        assert first_report.completed_requests == 24
        assert first_report.completed_requests == second_report.completed_requests
        assert self._hash(first) == self._hash(second)

    def test_batched_and_classic_reach_the_same_state(self):
        """batch_chains is a mechanism switch, not a behaviour switch: the
        committed stores must agree with the classic per-op run."""
        from repro.shard import ClosedLoopClient, ShardConfig, ShardedKV
        from repro.shard.workload import UniformKeys, YCSB_A

        def run(batch_chains: bool):
            service = ShardedKV(
                ShardConfig(
                    n_shards=2,
                    batch_max=4,
                    seed=7,
                    batch_chains=batch_chains,
                    deadline=100_000.0,
                )
            )
            clients = [
                ClosedLoopClient(
                    client_id=i, n_ops=4, keys=UniformKeys(16), mix=YCSB_A
                )
                for i in range(6)
            ]
            report = service.run_workload(clients)
            assert report.ok
            return {
                shard: dict(service.snapshot(shard))
                for shard in range(service.config.n_shards)
            }

        assert run(batch_chains=True) == run(batch_chains=False)
