"""Metrics ledger: decisions, agreement checking, delays, counters."""

import pytest

from repro.errors import AgreementViolation
from repro.metrics.ledger import MetricsLedger
from repro.metrics.reporting import format_check, format_table
from repro.types import ProcessId

P0, P1, P2 = ProcessId(0), ProcessId(1), ProcessId(2)


class TestDecisions:
    def test_record_and_delay(self):
        ledger = MetricsLedger()
        ledger.record_proposal(P0, 1.0)
        ledger.record_decision(P0, "v", 3.0)
        assert ledger.delays_of(P0) == 2.0
        assert ledger.decided_values() == {"v"}

    def test_decision_without_proposal_has_no_delay(self):
        ledger = MetricsLedger()
        ledger.record_decision(P0, "v", 3.0)
        assert ledger.delays_of(P0) is None

    def test_proposal_time_is_first_call(self):
        ledger = MetricsLedger()
        ledger.record_proposal(P0, 1.0)
        ledger.record_proposal(P0, 5.0)
        assert ledger.proposals[P0] == 1.0

    def test_repeat_decision_same_value_is_noop(self):
        ledger = MetricsLedger()
        ledger.record_decision(P0, "v", 1.0)
        ledger.record_decision(P0, "v", 9.0)
        assert ledger.decisions[P0].decided_at == 1.0

    def test_earliest_decision_delay(self):
        ledger = MetricsLedger()
        for pid, t in [(P0, 4.0), (P1, 2.0), (P2, 6.0)]:
            ledger.record_proposal(pid, 0.0)
            ledger.record_decision(pid, "v", t)
        assert ledger.earliest_decision_delay() == 2.0


class TestAgreementChecking:
    def test_conflicting_decisions_raise_in_strict_mode(self):
        ledger = MetricsLedger(strict_safety=True)
        ledger.record_decision(P0, "a", 1.0)
        with pytest.raises(AgreementViolation):
            ledger.record_decision(P1, "b", 2.0)

    def test_conflicting_decisions_recorded_in_lenient_mode(self):
        ledger = MetricsLedger(strict_safety=False)
        ledger.record_decision(P0, "a", 1.0)
        ledger.record_decision(P1, "b", 2.0)
        assert len(ledger.violations) == 1

    def test_revoked_decision_detected(self):
        ledger = MetricsLedger(strict_safety=False)
        ledger.record_decision(P0, "a", 1.0)
        ledger.record_decision(P0, "b", 2.0)
        assert ledger.violations

    def test_byzantine_decisions_ignored(self):
        ledger = MetricsLedger(strict_safety=True)
        ledger.byzantine.add(P2)
        ledger.record_decision(P0, "a", 1.0)
        ledger.record_decision(P2, "evil", 2.0)  # no exception
        assert ledger.decided_values() == {"a"}
        assert ledger.decided_values(exclude_byzantine=False) == {"a", "evil"}


class TestCounters:
    def test_totals(self):
        ledger = MetricsLedger()
        ledger.count_message(P0)
        ledger.count_message(P1)
        ledger.count_mem_op(P0, "WriteOp")
        ledger.count_signature(P0)
        ledger.count_signature(P0)
        assert ledger.total_messages() == 2
        assert ledger.total_mem_ops() == 1
        assert ledger.total_signatures() == 2
        assert ledger.signatures[P0] == 2


class TestReporting:
    def test_format_table_alignment(self):
        table = format_table(["algo", "delays"], [["PMP", 2.0], ["DiskPaxos", 4.0]])
        lines = table.splitlines()
        assert lines[0].startswith("algo")
        assert "-+-" in lines[1]
        assert lines[2].startswith("PMP")
        assert all(len(line) <= len(max(lines, key=len)) for line in lines)

    def test_format_table_empty_rows(self):
        table = format_table(["a"], [])
        assert "a" in table

    def test_format_check(self):
        assert format_check("x", True) == "[PASS] x"
        assert format_check("y", False) == "[FAIL] y"
