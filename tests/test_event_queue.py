"""Unit tests for the deterministic event queue."""

import pytest

from repro.sim.event_queue import EventQueue


class TestOrdering:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        order = []
        queue.push(3.0, lambda: order.append("c"))
        queue.push(1.0, lambda: order.append("a"))
        queue.push(2.0, lambda: order.append("b"))
        while queue:
            _, fn = queue.pop()
            fn()
        assert order == ["a", "b", "c"]

    def test_equal_times_are_fifo(self):
        queue = EventQueue()
        order = []
        for i in range(50):
            queue.push(1.0, lambda i=i: order.append(i))
        while queue:
            queue.pop()[1]()
        assert order == list(range(50))

    def test_interleaved_push_pop(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None)
        time, _ = queue.pop()
        assert time == 1.0
        queue.push(0.5, lambda: None)
        queue.push(2.0, lambda: None)
        assert queue.pop()[0] == 0.5
        assert queue.pop()[0] == 2.0


class TestPeek:
    def test_peek_time_empty(self):
        assert EventQueue().peek_time() is None

    def test_peek_time_returns_earliest(self):
        queue = EventQueue()
        queue.push(5.0, lambda: None)
        queue.push(2.0, lambda: None)
        assert queue.peek_time() == 2.0

    def test_len_and_bool(self):
        queue = EventQueue()
        assert not queue
        assert len(queue) == 0
        queue.push(1.0, lambda: None)
        assert queue
        assert len(queue) == 1


class TestValidation:
    def test_rejects_negative_time(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1.0, lambda: None)

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            EventQueue().push(float("nan"), lambda: None)

    def test_counters(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        queue.pop()
        assert queue.pushed == 2
        assert queue.popped == 1
