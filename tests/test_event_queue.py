"""Unit tests for the deterministic event queue and its typed entry format."""

import random

import pytest

from repro.sim.event_queue import (
    EV_CALL,
    EV_RESUME,
    EV_WAKE,
    EventQueue,
)


class TestOrdering:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        queue.push(3.0, EV_CALL, "c")
        queue.push(1.0, EV_CALL, "a")
        queue.push(2.0, EV_CALL, "b")
        order = []
        while queue:
            _time, _kind, a, _b, _c = queue.pop()
            order.append(a)
        assert order == ["a", "b", "c"]

    def test_equal_times_are_fifo(self):
        queue = EventQueue()
        for i in range(50):
            queue.push(1.0, EV_CALL, i)
        assert [queue.pop()[2] for _ in range(50)] == list(range(50))

    def test_interleaved_push_pop(self):
        queue = EventQueue()
        queue.push(1.0, EV_CALL)
        time, _kind, _a, _b, _c = queue.pop()
        assert time == 1.0
        queue.push(0.5, EV_CALL)
        queue.push(2.0, EV_CALL)
        assert queue.pop()[0] == 0.5
        assert queue.pop()[0] == 2.0

    def test_entry_carries_kind_and_operands(self):
        queue = EventQueue()
        queue.push(1.0, EV_WAKE, "task", 7, "value")
        time, kind, a, b, c = queue.pop()
        assert (time, kind, a, b, c) == (1.0, EV_WAKE, "task", 7, "value")

    def test_operands_default_to_none(self):
        queue = EventQueue()
        queue.push(1.0, EV_CALL)
        assert queue.pop() == (1.0, EV_CALL, None, None, None)

    def test_payloads_never_compared(self):
        # Tie-breaking must stop at (time, seq): payloads may be objects
        # with no ordering at all.
        queue = EventQueue()
        queue.push(1.0, EV_CALL, object(), {"un": "orderable"})
        queue.push(1.0, EV_CALL, object(), {"un": "orderable"})
        queue.pop()
        queue.pop()


class TestFifoProperties:
    """Property tests: FIFO tie-breaking survives arbitrary interleavings."""

    def test_random_times_pop_sorted_with_fifo_ties(self):
        rng = random.Random(1234)
        queue = EventQueue()
        stamps = []
        for i in range(500):
            time = float(rng.randrange(20))
            stamps.append((time, i))
            queue.push(time, EV_CALL, i)
        popped = []
        while queue:
            time, _kind, i, _b, _c = queue.pop()
            popped.append((time, i))
        # Stable sort by time == heap order with FIFO tie-breaking.
        assert popped == sorted(stamps, key=lambda entry: entry[0])

    def test_fifo_holds_across_interleaved_push_pop(self):
        rng = random.Random(99)
        queue = EventQueue()
        pushed = 0
        popped = []
        for _ in range(200):
            for _ in range(rng.randrange(4)):
                queue.push(5.0, EV_CALL, pushed)
                pushed += 1
            if queue and rng.random() < 0.5:
                popped.append(queue.pop()[2])
        while queue:
            popped.append(queue.pop()[2])
        assert popped == list(range(pushed))

    def test_ready_lane_is_fifo_and_beats_heap(self):
        queue = EventQueue()
        queue.push(0.0, EV_CALL, "heap")
        queue.push_ready(EV_RESUME, "r1")
        queue.push_ready(EV_RESUME, "r2")
        assert queue.pop_ready()[1] == "r1"
        assert queue.pop_ready()[1] == "r2"
        assert queue.pop()[2] == "heap"


class TestReadyLane:
    def test_ready_counts_in_len_and_bool(self):
        queue = EventQueue()
        assert not queue
        queue.push_ready(EV_RESUME, "task")
        assert queue
        assert len(queue) == 1
        assert queue.ready_count == 1
        queue.push(1.0, EV_CALL)
        assert len(queue) == 2

    def test_ready_entry_shape(self):
        queue = EventQueue()
        queue.push_ready(EV_RESUME, "task", "value")
        assert queue.pop_ready() == (EV_RESUME, "task", "value", None)

    def test_ready_does_not_affect_peek_time(self):
        queue = EventQueue()
        queue.push_ready(EV_RESUME)
        assert queue.peek_time() is None
        queue.push(4.0, EV_CALL)
        assert queue.peek_time() == 4.0


class TestPeek:
    def test_peek_time_empty(self):
        assert EventQueue().peek_time() is None

    def test_peek_time_returns_earliest(self):
        queue = EventQueue()
        queue.push(5.0, EV_CALL)
        queue.push(2.0, EV_CALL)
        assert queue.peek_time() == 2.0

    def test_len_and_bool(self):
        queue = EventQueue()
        assert not queue
        assert len(queue) == 0
        queue.push(1.0, EV_CALL)
        assert queue
        assert len(queue) == 1


class TestValidation:
    def test_rejects_negative_time(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1.0, EV_CALL)

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            EventQueue().push(float("nan"), EV_CALL)

    def test_counters(self):
        queue = EventQueue()
        queue.push(1.0, EV_CALL)
        queue.push(2.0, EV_CALL)
        queue.pop()
        assert queue.pushed == 2
        assert queue.popped == 1

    def test_counters_include_ready_lane(self):
        queue = EventQueue()
        queue.push(1.0, EV_CALL)
        queue.push_ready(EV_RESUME)
        queue.pop_ready()
        assert queue.pushed == 2
        assert queue.popped == 1
