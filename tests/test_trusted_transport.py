"""Trusted transport: T-send/T-receive, history checks, sender dropping."""

from repro.broadcast.nonequivocating import neb_regions
from repro.trusted.history import RecvEvent, SentEvent, TO_ALL, sent_count
from repro.trusted.transport import TMessage, TrustedTransport
from repro.types import ProcessId

from tests.conftest import env_of, make_kernel


def _kernel(n=3, m=3, **kw):
    return make_kernel(n, m, regions=neb_regions(range(n)), **kw)


def _wire(kernel, n, validator=None):
    transports = []
    for p in range(n):
        env = env_of(kernel, p)
        transport = TrustedTransport(env, validator=validator)
        kernel.spawn(p, "neb", transport.neb.delivery_daemon())
        transports.append(transport)
    return transports


class TestDelivery:
    def test_t_send_point_to_point(self):
        kernel = _kernel()
        transports = _wire(kernel, 3)

        def sender():
            yield from transports[0].t_send(ProcessId(1), "for-p2-only")

        def receiver():
            delivered = yield from transports[1].t_recv(timeout=200)
            return delivered

        kernel.spawn(0, "send", sender())
        task = kernel.spawn(1, "recv", receiver())
        kernel.run(until=400)
        assert task.result.sender == ProcessId(0)
        assert task.result.message == "for-p2-only"
        # Non-addressee tracked it for citations but did not consume it.
        assert all(d.message != "for-p2-only" for d in transports[2].delivered_log)
        assert (ProcessId(0), 1) in transports[2].seen

    def test_t_broadcast_reaches_everyone(self):
        kernel = _kernel()
        transports = _wire(kernel, 3)

        def sender():
            yield from transports[0].t_broadcast("to-all")

        kernel.spawn(0, "send", sender())
        kernel.run(until=400)
        for transport in transports:
            assert any(d.message == "to-all" for d in transport.delivered_log)

    def test_t_recv_timeout(self):
        kernel = _kernel()
        transports = _wire(kernel, 3)

        def receiver():
            delivered = yield from transports[0].t_recv(timeout=10.0)
            return delivered

        task = kernel.spawn(0, "recv", receiver())
        kernel.run(until=100)
        assert task.result is None

    def test_histories_grow_with_traffic(self):
        kernel = _kernel()
        transports = _wire(kernel, 3)

        def sender():
            yield from transports[0].t_broadcast("one")
            yield from transports[0].t_broadcast("two")

        kernel.spawn(0, "send", sender())
        kernel.run(until=400)
        sends = [e for e in transports[0].history if isinstance(e, SentEvent)]
        assert [e.k for e in sends] == [1, 2]
        recvs = [e for e in transports[1].history if isinstance(e, RecvEvent)]
        assert [e.message for e in recvs] == ["one", "two"]


class TestStructuralChecks:
    def test_sent_count_helper(self):
        history = (
            SentEvent(1, TO_ALL, "a"),
            RecvEvent(ProcessId(1), 1, TO_ALL, "x"),
            SentEvent(2, TO_ALL, "b"),
        )
        assert sent_count(history) == 2

    def test_gap_in_sent_sequence_rejected(self):
        assert not TrustedTransport._structurally_sound(
            3,
            (SentEvent(1, TO_ALL, "a"),),  # claims k=3 but only one send
        )

    def test_non_contiguous_ks_rejected(self):
        assert not TrustedTransport._structurally_sound(
            3,
            (SentEvent(1, TO_ALL, "a"), SentEvent(3, TO_ALL, "b")),
        )

    def test_alien_event_rejected(self):
        assert not TrustedTransport._structurally_sound(2, ("garbage",))

    def test_valid_history_accepted(self):
        assert TrustedTransport._structurally_sound(
            3,
            (
                SentEvent(1, TO_ALL, "a"),
                RecvEvent(ProcessId(2), 1, TO_ALL, "x"),
                SentEvent(2, TO_ALL, "b"),
            ),
        )


class TestCitationChecks:
    def test_citing_a_never_broadcast_message_drops_sender(self):
        """A Byzantine sender claims to have received something its victim
        never broadcast; every honest validator holds the victim's true
        stream and must drop the liar."""
        kernel = _kernel()
        kernel.mark_byzantine(ProcessId(0))
        transports = _wire(kernel, 3)
        env0 = env_of(kernel, 0)

        def honest_victim():
            yield from transports[1].t_broadcast("truth")

        def liar():
            # Wait until the victim's message circulated, then cite a lie.
            yield env0.sleep(20.0)
            fake_history = (RecvEvent(ProcessId(1), 1, TO_ALL, "LIE"),)
            payload = TMessage(message="attack", history=fake_history, dst=TO_ALL)
            yield from transports[0].neb.broadcast(payload)

        kernel.spawn(1, "victim", honest_victim())
        kernel.spawn(0, "liar", liar())
        kernel.run(until=400)
        assert ProcessId(0) in transports[2].dropped
        assert all(d.message != "attack" for d in transports[2].delivered_log)

    def test_citing_future_message_defers_then_validates(self):
        """An honest fast receiver may cite a message a slow peer has not
        delivered yet; the peer must defer, not convict."""
        kernel = _kernel()
        transports = _wire(kernel, 3)

        def p0():
            yield from transports[0].t_broadcast("first")

        def p1():
            delivered = yield from transports[1].t_recv(timeout=300)
            assert delivered.message == "first"
            yield from transports[1].t_broadcast("second-citing-first")

        kernel.spawn(0, "p0", p0())
        kernel.spawn(1, "p1", p1())
        kernel.run(until=600)
        messages = [d.message for d in transports[2].delivered_log]
        assert "first" in messages and "second-citing-first" in messages
        assert ProcessId(1) not in transports[2].dropped

    def test_citing_message_addressed_to_somebody_else_rejected(self):
        kernel = _kernel()
        kernel.mark_byzantine(ProcessId(2))
        transports = _wire(kernel, 3)
        env2 = env_of(kernel, 2)

        def p0():
            yield from transports[0].t_send(ProcessId(1), "private")

        def snoop():
            yield env2.sleep(30.0)  # let the private message circulate
            stolen = (RecvEvent(ProcessId(0), 1, ProcessId(1), "private"),)
            payload = TMessage(message="i-read-your-mail", history=stolen, dst=TO_ALL)
            yield from transports[2].neb.broadcast(payload)

        kernel.spawn(0, "p0", p0())
        kernel.spawn(2, "snoop", snoop())
        kernel.run(until=400)
        assert ProcessId(2) in transports[1].dropped
