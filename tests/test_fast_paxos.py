"""Fast Paxos baseline: 2-delay fast path, classic recovery."""

import pytest

from repro import FastPaxos, FastPaxosConfig, FaultPlan, JitteredSynchrony, run_consensus
from repro.core.cluster import Cluster, ClusterConfig
from repro.consensus.omega import crash_aware_omega


class TestFastPath:
    def test_decides_in_two_delays(self):
        result = run_consensus(FastPaxos(), 3, 0)
        assert result.all_decided and result.agreed and result.valid
        assert result.earliest_decision_delay == 2.0

    def test_fast_path_across_sizes(self):
        for n in (3, 5, 7):
            result = run_consensus(FastPaxos(), n, 0, deadline=3000)
            assert result.earliest_decision_delay == 2.0, f"n={n}"
            assert result.all_decided

    def test_all_processes_decide_same_value(self):
        result = run_consensus(FastPaxos(), 5, 0, inputs=list("abcde"))
        assert len(result.decided_values) == 1
        assert result.valid


class TestRecovery:
    def test_acceptor_crash_forces_recovery_but_decides(self):
        # Fast quorum is all n; a crashed acceptor blocks the fast path and
        # the coordinator recovers via the classic majority path.
        faults = FaultPlan().crash_process(2, at=0.0)
        result = run_consensus(FastPaxos(), 3, 0, faults=faults, deadline=3000)
        assert result.all_decided and result.agreed
        assert result.earliest_decision_delay > 2.0

    def test_contention_under_jitter_recovers_safely(self):
        for seed in (3, 5, 8, 13):
            result = run_consensus(
                FastPaxos(), 3, 0, latency=JitteredSynchrony(0.9), seed=seed,
                deadline=5000,
            )
            assert result.agreed and result.valid, f"seed={seed}"

    def test_coordinator_crash_failover(self):
        config = ClusterConfig(n_processes=5, n_memories=0, deadline=5000)
        faults = FaultPlan().crash_process(0, at=0.5).crash_process(1, at=0.5)
        cluster = Cluster(FastPaxos(), config, faults)
        cluster.kernel.omega = crash_aware_omega(cluster.kernel)
        result = cluster.run(list("abcde"))
        assert result.all_decided and result.agreed

    def test_forced_value_rule(self):
        """If a value may have been fast-decided (all acceptors accepted it),
        recovery must choose it."""
        # Crash one process just after it fast-accepts; remaining majority
        # all report the fast value, and recovery picks it.
        faults = FaultPlan().crash_process(2, at=1.5)
        result = run_consensus(
            FastPaxos(), 3, 0, faults=faults, inputs=["F", "x", "y"],
            deadline=5000,
        )
        assert result.agreed
        if result.decided_values:
            assert result.decided_values == {"F"}


class TestConfig:
    def test_recovery_delay_is_tunable(self):
        config = FastPaxosConfig(recovery_delay=2.0)
        faults = FaultPlan().crash_process(2, at=0.0)
        result = run_consensus(
            FastPaxos(config), 3, 0, faults=faults, deadline=3000
        )
        assert result.all_decided
