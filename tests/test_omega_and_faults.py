"""Ω oracles and fault plans."""

import pytest

from repro.consensus.omega import crash_aware_omega, leader_schedule, stable_leader
from repro.errors import ConfigurationError
from repro.failures.plans import FaultPlan
from repro.types import MemoryId, ProcessId

from tests.conftest import make_kernel


class TestOmega:
    def test_stable_leader(self):
        omega = stable_leader(2)
        assert omega(0.0) == 2
        assert omega(1e9) == 2

    def test_leader_schedule(self):
        omega = leader_schedule([(0.0, 0), (10.0, 1), (20.0, 2)])
        assert omega(0.0) == 0
        assert omega(9.9) == 0
        assert omega(10.0) == 1
        assert omega(25.0) == 2

    def test_leader_schedule_unsorted_input(self):
        omega = leader_schedule([(10.0, 1), (0.0, 0)])
        assert omega(5.0) == 0
        assert omega(15.0) == 1

    def test_empty_schedule_rejected(self):
        with pytest.raises(ValueError):
            leader_schedule([])

    def test_crash_aware_tracks_crashes(self):
        kernel = make_kernel()
        omega = crash_aware_omega(kernel)
        assert omega(0.0) == 0
        kernel.crash_process(ProcessId(0))
        assert omega(1.0) == 1
        kernel.crash_process(ProcessId(1))
        assert omega(2.0) == 2

    def test_crash_aware_preference_order(self):
        kernel = make_kernel()
        omega = crash_aware_omega(kernel, preference=[2, 1, 0])
        assert omega(0.0) == 2
        kernel.crash_process(ProcessId(2))
        assert omega(1.0) == 1


class TestFaultPlan:
    def test_builder_chaining(self):
        plan = FaultPlan().crash_process(0, at=5.0).crash_memory(1, at=2.0)
        assert plan.process_crashes == {0: 5.0}
        assert plan.memory_crashes == {1: 2.0}

    def test_faulty_processes_union(self):
        plan = FaultPlan().crash_process(0).make_byzantine(2, object())
        assert plan.faulty_processes == {0, 2}

    def test_validate_unknown_process(self):
        plan = FaultPlan().crash_process(9)
        with pytest.raises(ConfigurationError):
            plan.validate(3, 3)

    def test_validate_unknown_memory(self):
        plan = FaultPlan().crash_memory(7)
        with pytest.raises(ConfigurationError):
            plan.validate(3, 3)

    def test_validate_crash_and_byzantine_conflict(self):
        plan = FaultPlan().crash_process(1).make_byzantine(1, object())
        with pytest.raises(ConfigurationError):
            plan.validate(3, 3)

    def test_install_schedules_crashes(self):
        kernel = make_kernel()
        plan = FaultPlan().crash_process(1, at=5.0).crash_memory(0, at=3.0)
        plan.install(kernel)
        kernel.run(until=10)
        assert ProcessId(1) in kernel.crashed_processes
        assert kernel.memories[0].crashed

    def test_install_marks_byzantine(self):
        kernel = make_kernel()
        plan = FaultPlan().make_byzantine(2, object())
        plan.install(kernel)
        assert ProcessId(2) in kernel.byzantine_processes
        assert ProcessId(2) in kernel.metrics.byzantine

    def test_crash_times_are_honored(self):
        kernel = make_kernel()
        plan = FaultPlan().crash_process(0, at=7.0)
        plan.install(kernel)
        kernel.run(until=6.9)
        assert ProcessId(0) not in kernel.crashed_processes
        kernel.run(until=7.1)
        assert ProcessId(0) in kernel.crashed_processes
