"""Aligned Paxos (Section 5.2): combined process+memory majority."""

import pytest

from repro import AlignedConfig, AlignedPaxos, FaultPlan, JitteredSynchrony, run_consensus
from repro.consensus.omega import crash_aware_omega
from repro.core.cluster import Cluster, ClusterConfig


def _run_with_crashes(proc_crashes, mem_crashes, n=3, m=3, variant="protected",
                      crash_at=0.0, deadline=8000, leader_failover=False):
    config = ClusterConfig(n_processes=n, n_memories=m, deadline=deadline)
    faults = FaultPlan()
    for p in proc_crashes:
        faults.crash_process(p, at=crash_at)
    for mem in mem_crashes:
        faults.crash_memory(mem, at=crash_at)
    cluster = Cluster(AlignedPaxos(AlignedConfig(variant=variant)), config, faults)
    if leader_failover:
        cluster.kernel.omega = crash_aware_omega(cluster.kernel)
    return cluster.run([f"v{p}" for p in range(n)])


class TestCommonCase:
    def test_two_deciding_protected_variant(self):
        result = run_consensus(AlignedPaxos(), 3, 3)
        assert result.all_decided and result.agreed and result.valid
        assert result.earliest_decision_delay == 2.0

    def test_disk_variant_needs_more_delays(self):
        result = run_consensus(AlignedPaxos(AlignedConfig(variant="disk")), 3, 3)
        assert result.all_decided and result.agreed
        assert result.earliest_decision_delay >= 4.0

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            AlignedConfig(variant="quantum")


class TestCombinedMajority:
    """n=3, m=3: six agents, any 2 crashes are survivable regardless of the
    process/memory split — the paper's equivalence claim."""

    @pytest.mark.parametrize(
        "procs,mems",
        [([], [0, 1]), ([1], [0]), ([1, 2], []), ([2], [2]), ([], [1, 2])],
    )
    def test_any_two_agent_crashes_survive(self, procs, mems):
        result = _run_with_crashes(procs, mems)
        assert result.all_decided, f"procs={procs} mems={mems}"
        assert result.agreed and result.valid

    def test_three_crashes_block(self):
        # 3 of 6 agents: only 3 alive, not a majority -> must not decide.
        result = _run_with_crashes([1], [0, 1], deadline=600)
        assert not result.all_decided

    def test_all_memories_down_but_process_majority_up(self):
        # 3 processes + 0 memories alive = 3 of 6: NOT a majority; blocked.
        result = _run_with_crashes([], [0, 1, 2], deadline=600)
        assert not result.all_decided

    def test_larger_cluster_mixed_minority(self):
        # n=4, m=3: seven agents, tolerate any 3.
        result = _run_with_crashes([2, 3], [1], n=4, m=3)
        assert result.all_decided and result.agreed

    def test_leader_crash_with_memory_crash(self):
        result = _run_with_crashes([0], [2], crash_at=1.0, leader_failover=True)
        assert result.all_decided and result.agreed


class TestDiskVariantResilience:
    def test_disk_variant_combined_minority(self):
        result = _run_with_crashes([1], [0], variant="disk")
        assert result.all_decided and result.agreed

    def test_disk_variant_memory_pair_crash(self):
        result = _run_with_crashes([], [0, 2], variant="disk")
        assert result.all_decided and result.agreed


class TestSafety:
    @pytest.mark.parametrize("seed", [3, 5, 11])
    def test_safe_under_jitter(self, seed):
        result = run_consensus(
            AlignedPaxos(), 3, 3, latency=JitteredSynchrony(0.8), seed=seed,
            deadline=8000,
        )
        assert result.agreed and result.valid

    def test_leader_handover_adopts_accepted_value(self):
        from repro.consensus.omega import leader_schedule

        result = run_consensus(
            AlignedPaxos(), 3, 3,
            omega=leader_schedule([(0.0, 0), (10.0, 1)]),
            inputs=["FIRST", "x", "y"], deadline=8000,
        )
        assert result.agreed
        assert result.decided_values == {"FIRST"}
