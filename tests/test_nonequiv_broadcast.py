"""Non-equivocating broadcast: the three properties of Definition 1."""

from repro.broadcast.nonequivocating import (
    NonEquivocatingBroadcast,
    make_unit,
    neb_regions,
    unit_valid,
)
from repro.failures.byzantine import EquivocatingBroadcaster
from repro.mem.operations import WriteOp
from repro.types import MemoryId, ProcessId

from tests.conftest import env_of, make_kernel


def _kernel(n=3, m=3, **kw):
    return make_kernel(n, m, regions=neb_regions(range(n)), **kw)


def _wire(kernel, n):
    """One broadcast endpoint per process, delivery daemons running."""
    endpoints = []
    for p in range(n):
        env = env_of(kernel, p)
        neb = NonEquivocatingBroadcast(env)
        kernel.spawn(p, "neb", neb.delivery_daemon())
        endpoints.append((env, neb))
    return endpoints


class TestProperty1Delivery:
    def test_broadcast_reaches_all_correct_processes(self):
        kernel = _kernel()
        endpoints = _wire(kernel, 3)
        env0, neb0 = endpoints[0]

        def sender():
            yield from neb0.broadcast("m1")

        kernel.spawn(0, "send", sender())
        kernel.run(until=200)
        for _, neb in endpoints:
            assert [(d.sender, d.k, d.payload) for d in neb.delivered] == [
                (ProcessId(0), 1, "m1")
            ]

    def test_sequence_numbers_deliver_in_order(self):
        kernel = _kernel()
        endpoints = _wire(kernel, 3)
        env0, neb0 = endpoints[0]

        def sender():
            for i in range(5):
                yield from neb0.broadcast(f"m{i}")

        kernel.spawn(0, "send", sender())
        kernel.run(until=500)
        received = [d.payload for d in endpoints[2][1].delivered]
        assert received == [f"m{i}" for i in range(5)]

    def test_delivery_with_memory_crash(self):
        kernel = _kernel(m=3)
        kernel.crash_memory(MemoryId(1))
        endpoints = _wire(kernel, 3)
        _, neb0 = endpoints[0]

        def sender():
            yield from neb0.broadcast("resilient")

        kernel.spawn(0, "send", sender())
        kernel.run(until=300)
        assert endpoints[1][1].delivered[0].payload == "resilient"

    def test_two_broadcasters_interleave(self):
        kernel = _kernel()
        endpoints = _wire(kernel, 3)

        def sender(neb, tag):
            def gen():
                yield from neb.broadcast(f"{tag}-a")
                yield from neb.broadcast(f"{tag}-b")
            return gen()

        kernel.spawn(0, "s0", sender(endpoints[0][1], "p0"))
        kernel.spawn(1, "s1", sender(endpoints[1][1], "p1"))
        kernel.run(until=500)
        delivered = {(int(d.sender), d.k): d.payload for d in endpoints[2][1].delivered}
        assert delivered == {
            (0, 1): "p0-a",
            (0, 2): "p0-b",
            (1, 1): "p1-a",
            (1, 2): "p1-b",
        }


class TestProperty2NoEquivocation:
    def test_split_replica_writes_never_deliver_conflicting_values(self):
        kernel = _kernel()
        kernel.mark_byzantine(ProcessId(0))
        endpoints = [None]
        for p in range(1, 3):
            env = env_of(kernel, p)
            neb = NonEquivocatingBroadcast(env)
            kernel.spawn(p, "neb", neb.delivery_daemon())
            endpoints.append((env, neb))

        strategy = EquivocatingBroadcaster("A", "B")
        for name, gen in strategy.tasks(env_of(kernel, 0), None):
            kernel.spawn(0, name, gen)
        kernel.run(until=500)

        values_1 = {d.payload for d in endpoints[1][1].delivered}
        values_2 = {d.payload for d in endpoints[2][1].delivered}
        # Either nobody delivers (mixed replica read -> ⊥) or everybody
        # delivers the same value; never conflicting deliveries.
        assert len(values_1 | values_2) <= 1

    def test_direct_conflicting_witness_copies_block_delivery(self):
        # A Byzantine broadcaster writes value A to its own slot, but a
        # colluding witness plants a *validly signed* B copy: the honest
        # reader must detect the equivocation and never deliver.
        kernel = _kernel()
        kernel.mark_byzantine(ProcessId(0))
        kernel.mark_byzantine(ProcessId(1))
        env0 = env_of(kernel, 0)
        env2 = env_of(kernel, 2)
        neb2 = NonEquivocatingBroadcast(env2)
        kernel.spawn(2, "neb", neb2.delivery_daemon())

        def byzantine_pair():
            unit_a = make_unit(env0, 1, "A")
            unit_b = make_unit(env0, 1, "B")  # signed by 0: 0 equivocates
            for mid in env0.memories:
                yield env0.invoke(
                    mid, WriteOp("neb:0", ("neb", 0, 1, 0), unit_a)
                )
            # Colluder 1 would write into ITS witness slot; since unit_b is
            # signed by 0, the kernel permits it in region neb:1.
            for mid in env0.memories:
                yield env0.invoke(
                    mid, WriteOp("neb:0", ("neb", 0, 1, 0), unit_a)
                )
            yield env0.sleep(1.0)

        def colluder():
            env1 = env_of(kernel, 1)
            unit_b = make_unit(env0, 1, "B")
            for mid in env1.memories:
                yield env1.invoke(
                    mid, WriteOp("neb:1", ("neb", 1, 1, 0), unit_b)
                )
            yield env1.sleep(1.0)

        kernel.spawn(0, "byz0", byzantine_pair())
        kernel.spawn(1, "byz1", colluder())
        kernel.run(until=500)
        assert neb2.delivered == []
        assert ProcessId(0) in neb2.convicted


class TestProperty3Authenticity:
    def test_unsigned_junk_is_never_delivered(self):
        kernel = _kernel()
        kernel.mark_byzantine(ProcessId(0))
        env0 = env_of(kernel, 0)
        env1 = env_of(kernel, 1)
        neb1 = NonEquivocatingBroadcast(env1)
        kernel.spawn(1, "neb", neb1.delivery_daemon())

        def junk_writer():
            for mid in env0.memories:
                yield env0.invoke(
                    mid, WriteOp("neb:0", ("neb", 0, 1, 0), "raw-junk")
                )
            yield env0.sleep(1.0)

        kernel.spawn(0, "junk", junk_writer())
        kernel.run(until=300)
        assert neb1.delivered == []

    def test_wrong_sequence_number_rejected(self):
        kernel = _kernel()
        env0 = env_of(kernel, 0)
        unit = make_unit(env0, 5, "m")
        assert not unit_valid(env0, ProcessId(0), unit, 1)
        assert unit_valid(env0, ProcessId(0), unit, 5)

    def test_wrong_signer_rejected(self):
        kernel = _kernel()
        env0 = env_of(kernel, 0)
        unit = make_unit(env0, 1, "m")
        assert not unit_valid(env0, ProcessId(1), unit, 1)

    def test_self_delivery(self):
        kernel = _kernel()
        env0 = env_of(kernel, 0)
        neb0 = NonEquivocatingBroadcast(env0)
        kernel.spawn(0, "neb", neb0.delivery_daemon())

        def sender():
            yield from neb0.broadcast("to-myself")

        kernel.spawn(0, "send", sender())
        kernel.run(until=100)
        assert [d.payload for d in neb0.delivered] == ["to-myself"]
