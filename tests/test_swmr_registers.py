"""Replicated SWMR registers over fail-prone memories (Section 4.1)."""

from repro.mem.operations import WriteOp
from repro.registers.swmr import (
    ReplicatedRegister,
    ReplicatedSlotArray,
    read_many,
    swmr_regions,
)
from repro.types import MemoryId, OpStatus, is_bottom

from tests.conftest import env_of, make_kernel, run_single


def _kernel(n=3, m=3, **kw):
    return make_kernel(n, m, regions=swmr_regions("s", range(n), range(n)), **kw)


def _reg(owner=0, name="k"):
    return ReplicatedRegister(f"s:{owner}", ("s", owner, name))


class TestBasicOperation:
    def test_write_then_read(self):
        kernel = _kernel()
        env = env_of(kernel, 0)

        def gen():
            status = yield from _reg(0).write(env, "hello")
            assert status is OpStatus.ACK
            value = yield from _reg(0).read(env)
            return value

        task = run_single(kernel, 0, gen())
        assert task.result == "hello"

    def test_reader_is_another_process(self):
        kernel = _kernel()
        env0, env1 = env_of(kernel, 0), env_of(kernel, 1)

        def writer():
            yield from _reg(0).write(env0, 99)

        def reader():
            yield env1.sleep(5.0)
            value = yield from _reg(0).read(env1)
            return value

        kernel.spawn(0, "w", writer())
        task = run_single(kernel, 1, reader())
        assert task.result == 99

    def test_unwritten_reads_bottom(self):
        kernel = _kernel()
        env = env_of(kernel, 1)

        def gen():
            value = yield from _reg(0).read(env)
            return value

        task = run_single(kernel, 1, gen())
        assert is_bottom(task.result)

    def test_write_takes_two_delays(self):
        kernel = _kernel()
        env = env_of(kernel, 0)

        def gen():
            yield from _reg(0).write(env, 1)
            return env.now

        task = run_single(kernel, 0, gen())
        assert task.result == 2.0

    def test_non_owner_write_naks(self):
        kernel = _kernel()
        env = env_of(kernel, 1)

        def gen():
            status = yield from _reg(0).write(env, "stolen")
            return status

        task = run_single(kernel, 1, gen())
        assert task.result is OpStatus.NAK


class TestMemoryFailures:
    def test_tolerates_minority_crash(self):
        kernel = _kernel(m=3)
        kernel.crash_memory(MemoryId(2))
        env = env_of(kernel, 0)

        def gen():
            status = yield from _reg(0).write(env, "survives")
            value = yield from _reg(0).read(env)
            return (status, value)

        task = run_single(kernel, 0, gen())
        assert task.result == (OpStatus.ACK, "survives")

    def test_tolerates_f_of_2f_plus_1(self):
        kernel = _kernel(m=5)
        kernel.crash_memory(MemoryId(0))
        kernel.crash_memory(MemoryId(4))
        env = env_of(kernel, 0)

        def gen():
            yield from _reg(0).write(env, "v")
            value = yield from _reg(0).read(env)
            return value

        task = run_single(kernel, 0, gen())
        assert task.result == "v"

    def test_majority_crash_blocks(self):
        kernel = _kernel(m=3)
        kernel.crash_memory(MemoryId(0))
        kernel.crash_memory(MemoryId(1))
        env = env_of(kernel, 0)
        finished = []

        def gen():
            yield from _reg(0).write(env, "v")
            finished.append(True)

        kernel.spawn(0, "g", gen())
        kernel.run(until=500)
        assert not finished  # correctly blocked: m >= 2f+1 was violated

    def test_stale_replica_is_outvoted(self):
        # A value present on only a crashed-then-recovered minority replica
        # cannot be the read result... here: write lands everywhere, then a
        # replica holding a *different* (attacker-planted) value yields a
        # mixed read view -> the paper's rule returns the unique non-bottom
        # value only when it IS unique.
        kernel = _kernel(m=3)
        env = env_of(kernel, 0)

        def gen():
            yield from _reg(0).write(env, "real")
            # Plant divergence directly (test-only backdoor).
            kernel.memories[0].registers[("s", 0, "k")] = "planted"
            value = yield from _reg(0).read(env)
            return value

        task = run_single(kernel, 0, gen())
        assert is_bottom(task.result)  # two distinct values -> ⊥


class TestReadMany:
    def test_parallel_read_of_many_registers(self):
        kernel = _kernel()
        env0, env1, env2 = (env_of(kernel, p) for p in range(3))

        def w(env, owner):
            yield from _reg(owner).write(env, f"v{owner}")

        def reader():
            yield env2.sleep(5.0)
            start = env2.now
            view = yield from read_many(env2, [_reg(0), _reg(1), _reg(2, "k")])
            return (env2.now - start, view)

        kernel.spawn(0, "w0", w(env0, 0))
        kernel.spawn(1, "w1", w(env1, 1))
        kernel.spawn(2, "w2", w(env2, 2))
        task = run_single(kernel, 2, reader())
        elapsed, view = task.result
        assert elapsed == 2.0  # all registers in parallel
        assert view[("s", 0, "k")] == "v0"
        assert view[("s", 1, "k")] == "v1"

    def test_read_many_with_crashed_memory(self):
        kernel = _kernel(m=3)
        kernel.crash_memory(MemoryId(1))
        env = env_of(kernel, 0)

        def gen():
            yield from _reg(0).write(env, "x")
            view = yield from read_many(env, [_reg(0)])
            return view[("s", 0, "k")]

        task = run_single(kernel, 0, gen())
        assert task.result == "x"


class TestSlotArray:
    def test_snapshot_merges_across_memories(self):
        kernel = _kernel()
        env = env_of(kernel, 0)

        def gen():
            yield from ReplicatedRegister("s:0", ("s", 0, "a")).write(env, 1)
            yield from ReplicatedRegister("s:0", ("s", 0, "b")).write(env, 2)
            array = ReplicatedSlotArray("s:0", ("s", 0))
            view = yield from array.snapshot(env)
            return view

        task = run_single(kernel, 0, gen())
        assert task.result == {("s", 0, "a"): 1, ("s", 0, "b"): 2}

    def test_divergent_replica_value_reads_bottom(self):
        kernel = _kernel()
        env = env_of(kernel, 0)

        def gen():
            yield from ReplicatedRegister("s:0", ("s", 0, "a")).write(env, 1)
            # Corrupt a replica that is inside any responding majority: the
            # reader resumes as soon as 2 of 3 snapshots answer, so a value
            # diverging only on the last replica may legally go unseen.
            kernel.memories[1].registers[("s", 0, "a")] = "evil"
            array = ReplicatedSlotArray("s:0", ("s", 0))
            view = yield from array.snapshot(env)
            return view

        task = run_single(kernel, 0, gen())
        assert is_bottom(task.result[("s", 0, "a")])
