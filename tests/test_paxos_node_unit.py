"""White-box unit tests for PaxosNode's acceptor and selection logic."""

import pytest

from repro.consensus.ballots import Ballot
from repro.consensus.base import DirectTransport
from repro.consensus.messages import Accept, Accepted, Nack, Prepare, Promise
from repro.consensus.paxos import PaxosConfig, PaxosNode
from repro.types import ProcessId

from tests.conftest import env_of, make_kernel

B1 = Ballot(1, 0)
B2 = Ballot(2, 1)
B3 = Ballot(3, 2)


def _node(kernel, pid=0, value="mine"):
    env = env_of(kernel, pid)
    return PaxosNode(env, DirectTransport(env, topic="unit"), value)


def _drive(kernel, gen):
    task = kernel.spawn(0, "drive", gen)
    kernel.run(until=100)
    return task


class TestAcceptorRules:
    def test_promise_on_higher_ballot(self, kernel):
        node = _node(kernel)
        _drive(kernel, node._on_prepare(ProcessId(1), Prepare(B1)))
        assert node.acceptor.promised == B1

    def test_nack_on_lower_ballot(self, kernel):
        node = _node(kernel)
        _drive(kernel, node._on_prepare(ProcessId(1), Prepare(B2)))
        _drive(kernel, node._on_prepare(ProcessId(2), Prepare(B1)))
        assert node.acceptor.promised == B2  # unchanged by the lower one

    def test_accept_updates_state(self, kernel):
        node = _node(kernel)
        _drive(kernel, node._on_accept(ProcessId(1), Accept(B1, "v")))
        assert node.acceptor.accepted_ballot == B1
        assert node.acceptor.accepted_value == "v"
        assert node.acceptor.promised == B1

    def test_accept_below_promise_rejected(self, kernel):
        node = _node(kernel)
        _drive(kernel, node._on_prepare(ProcessId(1), Prepare(B2)))
        _drive(kernel, node._on_accept(ProcessId(2), Accept(B1, "v")))
        assert node.acceptor.accepted_ballot is None

    def test_accept_at_exact_promise_allowed(self, kernel):
        node = _node(kernel)
        _drive(kernel, node._on_prepare(ProcessId(1), Prepare(B1)))
        _drive(kernel, node._on_accept(ProcessId(1), Accept(B1, "v")))
        assert node.acceptor.accepted_ballot == B1


class TestValueSelection:
    def test_no_accepted_pairs_keeps_own_value(self, kernel):
        node = _node(kernel, value="own")
        node.promises[B3] = {
            ProcessId(1): Promise(B3, None, None),
            ProcessId(2): Promise(B3, None, None),
        }
        assert node._choose_value(B3) == "own"

    def test_adopts_highest_accepted(self, kernel):
        node = _node(kernel, value="own")
        node.promises[B3] = {
            ProcessId(1): Promise(B3, B1, "older"),
            ProcessId(2): Promise(B3, B2, "newer"),
        }
        assert node._choose_value(B3) == "newer"

    def test_mixed_none_and_accepted(self, kernel):
        node = _node(kernel, value="own")
        node.promises[B3] = {
            ProcessId(1): Promise(B3, None, None),
            ProcessId(2): Promise(B3, B1, "forced"),
        }
        assert node._choose_value(B3) == "forced"


class TestLearning:
    def test_learn_is_idempotent(self, kernel):
        node = _node(kernel)
        node._learn("v")
        node._learn("v")
        assert node.decided and node.decided_value == "v"
        assert kernel.metrics.decisions[ProcessId(0)].value == "v"

    def test_nack_filing_updates_highest_seen(self, kernel):
        node = _node(kernel)
        node._file_nack(Nack(ballot=B1, promised=B3))
        assert node.highest_seen == B3
        assert B1 in node.nacked

    def test_accepted_filing_counts_distinct_senders(self, kernel):
        node = _node(kernel)
        node._file_accepted(ProcessId(1), Accepted(B1, "v"))
        node._file_accepted(ProcessId(1), Accepted(B1, "v"))
        node._file_accepted(ProcessId(2), Accepted(B1, "v"))
        assert len(node.accepts[B1]) == 2
