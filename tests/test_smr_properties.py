"""Property-based tests for the crash-model replicated log.

The invariant under test is the SMR core: however leadership moves around,
every replica applies the same command per slot — the takeover cache
(whole-region snapshot at permission grab) is what makes it hold.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.consensus.base import ConsensusProtocol
from repro.consensus.omega import leader_schedule
from repro.core.cluster import Cluster, ClusterConfig
from repro.smr.kv import KVCommand, KVStateMachine
from repro.smr.log import ReplicatedLog, smr_regions

_SETTINGS = settings(
    max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

N_SLOTS = 4


class _DualProposerHarness(ConsensusProtocol):
    """Two processes race to propose every slot; replicas must converge."""

    name = "smr-prop"

    def __init__(self):
        self.machines = {}

    def regions(self, n, m):
        return smr_regions(n)

    def tasks(self, env, value):
        machine = KVStateMachine()
        log = ReplicatedLog(env, machine.apply)
        self.machines[int(env.pid)] = machine

        def driver():
            pid = int(env.pid)
            if pid in (0, 1):
                for slot in range(N_SLOTS):
                    command = KVCommand("put", f"slot{slot}", f"p{pid+1}")
                    yield from log.propose(slot, command)
            while log.applied_upto < N_SLOTS - 1:
                yield env.gate_wait(log.commit_gate, timeout=10.0)
            env.decide(tuple(sorted(machine.snapshot().items())))

        return [("listener", log.listener()), ("driver", driver())]


class TestLogConvergence:
    @_SETTINGS
    @given(
        seed=st.integers(0, 10_000),
        handover=st.floats(1.0, 40.0),
    )
    def test_single_handover_converges(self, seed, handover):
        harness = _DualProposerHarness()
        cluster = Cluster(
            harness,
            ClusterConfig(
                3, 3, seed=seed, deadline=30_000,
                omega=leader_schedule([(0.0, 0), (handover, 1)]),
            ),
        )
        result = cluster.run([None] * 3)
        assert result.all_decided and result.agreed
        snapshots = [m.snapshot() for m in harness.machines.values()]
        assert snapshots[0] == snapshots[1] == snapshots[2]
        assert set(snapshots[0]) == {f"slot{i}" for i in range(N_SLOTS)}

    @_SETTINGS
    @given(
        seed=st.integers(0, 10_000),
        flips=st.lists(st.floats(1.0, 60.0), min_size=2, max_size=4),
    )
    def test_flapping_leadership_converges(self, seed, flips):
        schedule = [(0.0, 0)] + [
            (t, i % 2) for i, t in enumerate(sorted(flips), start=1)
        ]
        harness = _DualProposerHarness()
        cluster = Cluster(
            harness,
            ClusterConfig(
                3, 3, seed=seed, deadline=60_000,
                omega=leader_schedule(schedule),
            ),
        )
        result = cluster.run([None] * 3)
        # Liveness may suffer under pathological flapping; convergence of
        # whatever committed must not.
        assert not result.metrics.violations
        committed = [
            {k: v for k, v in m.snapshot().items()}
            for m in harness.machines.values()
        ]
        if result.all_decided:
            assert committed[0] == committed[1] == committed[2]
