"""The transport abstraction: Direct vs Trusted adapters behind one API."""

import pytest

from repro.broadcast.nonequivocating import neb_regions
from repro.consensus.base import (
    DirectTransport,
    ProposerOutcome,
    Transport,
    TrustedAdapter,
    wait_until,
)
from repro.trusted.transport import TrustedTransport
from repro.types import ProcessId

from tests.conftest import env_of, make_kernel


class TestDirectTransport:
    def test_send_recv(self, kernel):
        env0, env1 = env_of(kernel, 0), env_of(kernel, 1)
        t0 = DirectTransport(env0, topic="x")
        t1 = DirectTransport(env1, topic="x")

        def sender():
            yield from t0.send(ProcessId(1), {"n": 1})

        def receiver():
            got = yield from t1.recv(timeout=50)
            return got

        kernel.spawn(0, "s", sender())
        task = kernel.spawn(1, "r", receiver())
        kernel.run(until=100)
        assert task.result == (ProcessId(0), {"n": 1})

    def test_broadcast_includes_self(self, kernel):
        env = env_of(kernel, 0)
        transport = DirectTransport(env, topic="y")

        def roundtrip():
            yield from transport.broadcast("to-everyone")
            got = yield from transport.recv(timeout=50)
            return got

        task = kernel.spawn(0, "rt", roundtrip())
        kernel.run(until=100)
        assert task.result == (ProcessId(0), "to-everyone")

    def test_topic_isolation_between_transports(self, kernel):
        env0, env1 = env_of(kernel, 0), env_of(kernel, 1)
        ta = DirectTransport(env0, topic="a")
        tb = DirectTransport(env1, topic="b")

        def sender():
            yield from ta.send(ProcessId(1), "for-topic-a")

        def receiver():
            got = yield from tb.recv(timeout=10)
            return got

        kernel.spawn(0, "s", sender())
        task = kernel.spawn(1, "r", receiver())
        kernel.run(until=100)
        assert task.result is None


class TestTrustedAdapter:
    def test_same_api_over_trusted_layer(self):
        kernel = make_kernel(3, 3, regions=neb_regions(range(3)))
        adapters = []
        for p in range(3):
            env = env_of(kernel, p)
            trusted = TrustedTransport(env)
            kernel.spawn(p, "neb", trusted.neb.delivery_daemon())
            adapters.append(TrustedAdapter(trusted))

        def sender():
            yield from adapters[0].broadcast("via-registers")

        def receiver():
            got = yield from adapters[1].recv(timeout=500)
            return got

        kernel.spawn(0, "s", sender())
        task = kernel.spawn(1, "r", receiver())
        kernel.run(until=1000)
        assert task.result == (ProcessId(0), "via-registers")

    def test_recv_timeout(self):
        kernel = make_kernel(3, 3, regions=neb_regions(range(3)))
        env = env_of(kernel, 0)
        trusted = TrustedTransport(env)
        adapter = TrustedAdapter(trusted)

        def receiver():
            got = yield from adapter.recv(timeout=5)
            return got

        task = kernel.spawn(0, "r", receiver())
        kernel.run(until=100)
        assert task.result is None


class TestBaseHelpers:
    def test_transport_is_abstract(self):
        with pytest.raises(TypeError):
            Transport()

    def test_proposer_outcome_shape(self):
        outcome = ProposerOutcome(decided=True, value=7)
        assert outcome.decided and outcome.value == 7

    def test_wait_until_immediate(self, kernel):
        env = env_of(kernel, 0)
        gate = env.new_gate("g")

        def gen():
            ok = yield from wait_until(env, gate, lambda: True, timeout=10)
            return (ok, env.now)

        task = kernel.spawn(0, "w", gen())
        kernel.run(until=100)
        assert task.result == (True, 0.0)

    def test_wait_until_timeout(self, kernel):
        env = env_of(kernel, 0)
        gate = env.new_gate("never")

        def gen():
            ok = yield from wait_until(env, gate, lambda: False, timeout=7.0)
            return (ok, env.now)

        task = kernel.spawn(0, "w", gen())
        kernel.run(until=100)
        assert task.result == (False, 7.0)
