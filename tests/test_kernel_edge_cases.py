"""Kernel edge cases and error paths."""

import pytest

from repro.errors import SimulationError
from repro.mem.operations import ReadOp
from repro.sim.kernel import Kernel, SimConfig
from repro.types import MemoryId, ProcessId

from tests.conftest import env_of, make_kernel, run_single


class TestConfigValidation:
    def test_zero_processes_rejected(self):
        with pytest.raises(ValueError):
            SimConfig(n_processes=0)

    def test_negative_memories_rejected(self):
        with pytest.raises(ValueError):
            SimConfig(n_processes=1, n_memories=-1)

    def test_memoryless_system_allowed(self):
        # The pure message-passing special case of Section 3.
        kernel = Kernel(SimConfig(n_processes=2, n_memories=0))
        assert kernel.memories == []


class TestInvalidOperations:
    def test_invoke_on_missing_memory_raises(self, kernel):
        env = env_of(kernel, 0)

        def gen():
            yield env.invoke(9, ReadOp("r", ("x", "k")))

        kernel.spawn(0, "bad", gen())
        with pytest.raises(SimulationError):
            kernel.run(until=10)

    def test_yielding_garbage_raises(self, kernel):
        def gen():
            yield "not-an-effect"

        kernel.spawn(0, "bad", gen())
        with pytest.raises(SimulationError):
            kernel.run(until=10)

    def test_time_never_goes_backwards(self, kernel):
        env = env_of(kernel, 0)

        def gen():
            yield env.sleep(5.0)
            return env.now

        task = run_single(kernel, 0, gen())
        assert task.result == 5.0
        assert kernel.now >= 5.0


class TestSamePidMultipleTasks:
    def test_tasks_share_inbox(self, kernel):
        env = env_of(kernel, 0)
        got = []

        def producer():
            yield env.send(0, "one", topic="q")
            yield env.send(0, "two", topic="q")

        def consumer(tag):
            msg = yield from env.recv(topic="q")
            got.append((tag, msg.payload))

        kernel.spawn(0, "p", producer())
        kernel.spawn(0, "c1", consumer("c1"))
        kernel.spawn(0, "c2", consumer("c2"))
        kernel.run(until=50)
        # Each message consumed exactly once across the two consumers.
        assert sorted(p for _tag, p in got) == ["one", "two"]

    def test_crash_kills_all_tasks_of_process(self, kernel):
        env = env_of(kernel, 0)
        ticks = []

        def ticker(tag):
            while True:
                yield env.sleep(1.0)
                ticks.append((tag, env.now))

        kernel.spawn(0, "t1", ticker("a"))
        kernel.spawn(0, "t2", ticker("b"))
        kernel.call_at(2.5, lambda: kernel.crash_process(ProcessId(0)))
        kernel.run(until=20)
        assert all(t <= 2.5 for _tag, t in ticks)


class TestTimeoutRaces:
    def test_timeout_and_delivery_same_instant(self, kernel):
        """A message arriving exactly at the timeout instant: the receiver
        gets exactly one of the two outcomes, never both / neither."""
        env0, env1 = env_of(kernel, 0), env_of(kernel, 1)

        def sender():
            yield env0.sleep(4.0)
            yield env0.send(1, "late", topic="t")  # arrives at t=5

        def receiver():
            msg = yield from env1.recv(topic="t", timeout=5.0)
            return msg.payload if msg else "timeout"

        kernel.spawn(0, "s", sender())
        task = run_single(kernel, 1, receiver())
        assert task.result in ("late", "timeout")

    def test_stale_timer_does_not_rewake(self, kernel):
        env = env_of(kernel, 0)
        wakes = []

        def gen():
            msg = yield from env.recv(topic="t", timeout=10.0)
            wakes.append(msg)
            yield env.sleep(20.0)  # survive past the stale timer
            wakes.append("after")

        def sender():
            yield env.send(0, "fast", topic="t")

        kernel.spawn(1, "s", sender())
        kernel.spawn(0, "r", gen())
        kernel.run(until=100)
        assert len(wakes) == 2
        assert wakes[1] == "after"

    def test_wait_zero_count_resumes_immediately(self, kernel):
        env = env_of(kernel, 0)

        def gen():
            ok = yield env.wait((), count=0)
            return (ok, env.now)

        task = run_single(kernel, 0, gen())
        assert task.result == (True, 0.0)


class TestMetricsPlumbing:
    def test_message_and_op_counters(self, kernel):
        env = env_of(kernel, 0)

        def gen():
            yield env.send(1, "x", topic="t")
            yield from env.write(0, "r", ("x", "k"), 1)
            yield from env.read(0, "r", ("x", "k"))

        run_single(kernel, 0, gen())
        assert kernel.metrics.total_messages() == 1
        assert kernel.metrics.mem_ops[(ProcessId(0), "WriteOp")] == 1
        assert kernel.metrics.mem_ops[(ProcessId(0), "ReadOp")] == 1

    def test_trace_records_lifecycle(self):
        kernel = make_kernel(trace=True)
        env = env_of(kernel, 0)

        def gen():
            yield env.send(1, "x", topic="t")
            yield from env.write(0, "r", ("x", "k"), 1)

        run_single(kernel, 0, gen())
        kinds = {e.kind for e in kernel.tracer.events}
        assert {"spawn", "send", "deliver", "invoke", "op_result"} <= kinds
