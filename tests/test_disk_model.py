"""The pure disk model of Section 3: no links at all."""

import pytest

from repro.consensus.disk_paxos import DiskPaxos, DiskPaxosConfig
from repro.consensus.omega import crash_aware_omega
from repro.core.cluster import Cluster, ClusterConfig
from repro.errors import SimulationError
from repro.failures.plans import FaultPlan

from tests.conftest import env_of, make_kernel


def _link_free_cluster(faults=None, n=3, m=3, deadline=5000):
    cluster = Cluster(
        DiskPaxos(DiskPaxosConfig(link_free=True)),
        ClusterConfig(n, m, deadline=deadline),
        faults,
    )
    cluster.kernel.config.links_enabled = False  # the disk model: no links
    return cluster


class TestLinkFreeDiskPaxos:
    def test_decides_with_zero_messages(self):
        cluster = _link_free_cluster()
        result = cluster.run(["a", "b", "c"])
        assert result.all_decided and result.agreed and result.valid
        assert result.metrics.total_messages() == 0

    def test_leader_still_four_deciding(self):
        cluster = _link_free_cluster()
        result = cluster.run(["a", "b", "c"])
        assert result.earliest_decision_delay == 4.0

    def test_learners_decide_by_polling_disks(self):
        cluster = _link_free_cluster()
        result = cluster.run(["a", "b", "c"])
        # Non-leaders decided strictly after the leader (poll cadence).
        times = {int(p): r.decided_at for p, r in result.metrics.decisions.items()}
        assert times[1] > times[0] and times[2] > times[0]

    def test_survives_leader_crash_without_links(self):
        faults = FaultPlan().crash_process(0, at=1.0)
        cluster = _link_free_cluster(faults=faults)
        cluster.kernel.omega = crash_aware_omega(cluster.kernel)
        result = cluster.run(["a", "b", "c"])
        assert result.all_decided and result.agreed

    def test_survives_memory_minority_without_links(self):
        faults = FaultPlan().crash_memory(1, at=0.0)
        cluster = _link_free_cluster(faults=faults)
        result = cluster.run(["a", "b", "c"])
        assert result.all_decided and result.agreed


class TestLinkEnforcement:
    def test_sending_raises_in_disk_model(self):
        kernel = make_kernel(links_enabled=False)
        env = env_of(kernel, 0)

        def gen():
            yield env.send(1, "illegal", topic="t")

        kernel.spawn(0, "g", gen())
        with pytest.raises(SimulationError):
            kernel.run(until=10)

    def test_post_init_toggle_is_enforced(self):
        # _link_free_cluster flips the flag on an already-built kernel's
        # config; the send path must read it live, not a cached copy.
        kernel = make_kernel()
        kernel.config.links_enabled = False
        env = env_of(kernel, 0)

        def gen():
            yield env.send(1, "illegal", topic="t")

        kernel.spawn(0, "g", gen())
        with pytest.raises(SimulationError):
            kernel.run(until=10)

    def test_default_model_allows_links(self):
        kernel = make_kernel()
        env = env_of(kernel, 0)

        def gen():
            yield env.send(1, "legal", topic="t")

        kernel.spawn(0, "g", gen())
        kernel.run(until=10)  # no exception
