"""Network unit tests: inboxes, waiters, integrity bookkeeping."""

from repro.net.messages import Envelope
from repro.net.network import Network, RecvWaiter
from repro.types import ProcessId

P0, P1 = ProcessId(0), ProcessId(1)


def _env(src=P0, dst=P1, topic="t", payload="x"):
    return Envelope(src=src, dst=dst, topic=topic, payload=payload, sent_at=0.0)


class TestDelivery:
    def test_delivery_queues_without_waiter(self):
        net = Network(2)
        assert net.deliver(_env()) is None
        assert net.pending_count(P1) == 1

    def test_duplicate_envelope_dropped(self):
        net = Network(2)
        env = _env()
        net.deliver(env)
        assert net.deliver(env) is None
        assert net.dropped == 1
        assert net.pending_count(P1) == 1

    def test_matching_waiter_consumes_directly(self):
        net = Network(2)
        woken = []
        waiter = RecvWaiter(P1, token=1, topic="t", match=None,
                            wake=lambda e: woken.append(e))
        net.park(waiter)
        returned = net.deliver(_env())
        assert returned is waiter
        assert net.pending_count(P1) == 0  # consumed, not queued

    def test_topic_mismatch_leaves_waiter_parked(self):
        net = Network(2)
        waiter = RecvWaiter(P1, token=1, topic="other", match=None, wake=None)
        net.park(waiter)
        assert net.deliver(_env(topic="t")) is None
        assert net.waiters[P1] == [waiter]


class TestConsume:
    def test_try_consume_respects_topic_and_match(self):
        net = Network(2)
        net.deliver(_env(payload=1, topic="a"))
        net.deliver(_env(payload=2, topic="b"))
        net.deliver(_env(payload=3, topic="b"))
        assert net.try_consume(P1, "b", None).payload == 2
        assert net.try_consume(P1, "b", lambda e: e.payload == 3).payload == 3
        assert net.try_consume(P1, "b", None) is None
        assert net.try_consume(P1, "a", None).payload == 1

    def test_unpark_removes_by_token(self):
        net = Network(2)
        net.park(RecvWaiter(P1, token=1, topic=None, match=None, wake=None))
        net.park(RecvWaiter(P1, token=2, topic=None, match=None, wake=None))
        net.unpark(P1, 1)
        assert [w.token for w in net.waiters[P1]] == [2]


class TestCrashHandling:
    def test_drop_process_clears_state(self):
        net = Network(2)
        net.deliver(_env())
        net.park(RecvWaiter(P1, token=9, topic=None, match=None, wake=None))
        net.drop_process(P1)
        assert net.pending_count(P1) == 0
        assert net.waiters[P1] == []


class TestEnvelope:
    def test_unique_ids(self):
        assert _env().msg_id != _env().msg_id

    def test_repr_mentions_endpoints(self):
        text = repr(_env())
        assert "p1" in text and "p2" in text
