"""Seed-replay determinism under the hot-path engine.

The PR 2 kernel overhaul (typed queue entries, dispatch tables, ready-lane
wakes, direct resumes) must not cost reproducibility: two runs of the same
seed must produce byte-identical schedules.  These tests replay a mixed
crash + Byzantine sharded workload twice and compare a hash over the FULL
execution — every trace event, every decision, all message/op counters —
plus the exact committed state.
"""

import hashlib

from repro.shard import (
    ClosedLoopClient,
    ShardConfig,
    ShardedKV,
    YCSB_A,
    ZipfianKeys,
)
from repro.types import MemoryId


N_CLIENTS = 12
OPS_PER_CLIENT = 4


def _run_mixed(seed: int, scheduler=None):
    """One sharded run: 3 PMP shards + 1 Byzantine (Fast & Robust) shard,
    with a memory crash injected mid-run.  Tracing on, so the returned
    service carries the complete event log.  *scheduler* optionally runs
    the whole workload through the pluggable-scheduler path (the parity
    tests in test_schedule.py assert it changes nothing)."""
    service = ShardedKV(
        ShardConfig(
            n_shards=4,
            batch_max=4,
            seed=seed,
            trace=True,
            bft_shards=(3,),
            bft_max_slots=16,
            deadline=100_000.0,
        )
    )
    service.kernel.scheduler = scheduler
    # Crash one of the three memories mid-run: quorums of 2 still carry
    # every shard, and the crash lands in the schedule deterministically.
    service.kernel.call_at(40.0, lambda: service.kernel.crash_memory(MemoryId(2)))
    clients = [
        ClosedLoopClient(
            client_id=i, n_ops=OPS_PER_CLIENT, keys=ZipfianKeys(64), mix=YCSB_A
        )
        for i in range(N_CLIENTS)
    ]
    report = service.run_workload(clients)
    return service, report


def _trace_hash(service) -> str:
    """Hash the full schedule: every trace event in order, all decisions,
    and the end-of-run counters."""
    kernel = service.kernel
    digest = hashlib.sha256()
    for event in kernel.tracer.events:
        digest.update(str(event).encode())
        digest.update(b"\n")
    for instance, book in sorted(
        kernel.metrics.instance_decisions.items(), key=lambda kv: repr(kv[0])
    ):
        for pid in sorted(book):
            record = book[pid]
            digest.update(
                f"D {instance!r} p{int(pid)} {record.value!r} @{record.decided_at}".encode()
            )
    digest.update(
        (
            f"msgs={sorted(kernel.metrics.messages_sent.items())} "
            f"ops={sorted(kernel.metrics.mem_ops.items())} "
            f"pushed={kernel.queue.pushed} popped={kernel.queue.popped} "
            f"now={kernel.now}"
        ).encode()
    )
    return digest.hexdigest()


def _state_fingerprint(service) -> tuple:
    """The observable outcome: per-shard committed stores and counters."""
    snapshot = tuple(
        tuple(sorted(service.snapshot(shard).items()))
        for shard in range(service.config.n_shards)
    )
    machines = tuple(
        (pid, shard, machine.applied_count, machine.duplicates)
        for (pid, shard), machine in sorted(service.machines.items())
    )
    return snapshot, machines


class TestSeedReplay:
    def test_identical_trace_hash_for_same_seed(self):
        first_service, first_report = _run_mixed(seed=1234)
        second_service, second_report = _run_mixed(seed=1234)

        assert first_report.completed_requests == N_CLIENTS * OPS_PER_CLIENT
        assert first_report.completed_requests == second_report.completed_requests
        assert first_report.elapsed == second_report.elapsed
        assert _trace_hash(first_service) == _trace_hash(second_service)
        assert _state_fingerprint(first_service) == _state_fingerprint(second_service)

    def test_identical_decision_values_and_counters(self):
        first_service, _ = _run_mixed(seed=77)
        second_service, _ = _run_mixed(seed=77)
        first, second = first_service.kernel.metrics, second_service.kernel.metrics

        first_decisions = {
            (repr(instance), int(pid)): record.value
            for instance, book in first.instance_decisions.items()
            for pid, record in book.items()
        }
        second_decisions = {
            (repr(instance), int(pid)): record.value
            for instance, book in second.instance_decisions.items()
            for pid, record in book.items()
        }
        assert first_decisions == second_decisions
        assert first.total_messages() == second.total_messages()
        assert first.total_mem_ops() == second.total_mem_ops()
        assert first.total_signatures() == second.total_signatures()

    def test_different_seeds_diverge(self):
        # The hash is sensitive: different seeds shuffle the Zipfian keys
        # and the whole schedule with them.
        first_service, _ = _run_mixed(seed=1)
        second_service, _ = _run_mixed(seed=2)
        assert _trace_hash(first_service) != _trace_hash(second_service)

    def test_trace_not_truncated(self):
        # The hash covers the FULL schedule only if the tracer kept it all.
        service, _ = _run_mixed(seed=1234)
        assert not service.kernel.tracer.truncated
