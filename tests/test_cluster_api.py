"""The public cluster API surface."""

import pytest

from repro import (
    FaultPlan,
    MessagePaxos,
    ProtectedMemoryPaxos,
    run_consensus,
)
from repro.core.cluster import Cluster, ClusterConfig, RunResult
from repro.errors import ConfigurationError


class TestRunConsensus:
    def test_default_inputs_generated(self):
        result = run_consensus(ProtectedMemoryPaxos(), 3, 3)
        assert result.inputs == ["value-1", "value-2", "value-3"]

    def test_explicit_inputs(self):
        result = run_consensus(ProtectedMemoryPaxos(), 2, 3, inputs=["x", "y"])
        assert result.decided_values == {"x"}

    def test_wrong_input_count_rejected(self):
        cluster = Cluster(MessagePaxos(), ClusterConfig(3, 0))
        with pytest.raises(ConfigurationError):
            cluster.start(["only-one"])

    def test_result_properties(self):
        result = run_consensus(ProtectedMemoryPaxos(), 3, 3)
        assert isinstance(result, RunResult)
        assert result.all_decided
        assert result.agreed and result.valid
        assert result.final_time > 0
        assert result.delay_of(0) == 2.0
        assert result.signatures_used == 0  # PMP uses no signatures

    def test_decisions_mapping(self):
        result = run_consensus(ProtectedMemoryPaxos(), 3, 3)
        assert set(result.decisions.values()) == {"value-1"}
        assert len(result.decisions) == 3

    def test_seeds_are_reproducible(self):
        a = run_consensus(MessagePaxos(), 3, 0, seed=5)
        b = run_consensus(MessagePaxos(), 3, 0, seed=5)
        assert a.final_time == b.final_time
        assert a.decisions == b.decisions

    def test_faults_validated_at_construction(self):
        with pytest.raises(ConfigurationError):
            run_consensus(
                ProtectedMemoryPaxos(), 3, 3,
                faults=FaultPlan().crash_process(17),
            )

    def test_deadline_bounds_run(self):
        faults = FaultPlan().crash_memory(0).crash_memory(1)
        result = run_consensus(
            ProtectedMemoryPaxos(), 3, 3, faults=faults, deadline=50
        )
        assert not result.all_decided
        assert result.final_time <= 50

    def test_crash_aware_omega_string(self):
        faults = FaultPlan().crash_process(0, at=0.0)
        result = run_consensus(
            ProtectedMemoryPaxos(), 2, 3, faults=faults,
            omega="crash-aware", deadline=3000,
        )
        assert result.all_decided

    def test_trace_flag_enables_tracing(self):
        result = run_consensus(ProtectedMemoryPaxos(), 3, 3, trace=True)
        assert result.kernel.tracer.events


class TestClusterConfigValidation:
    def test_zero_processes_rejected(self):
        # Raised by SimConfig at kernel construction time.
        with pytest.raises(ValueError):
            Cluster(MessagePaxos(), ClusterConfig(n_processes=0, n_memories=0))

    def test_env_for_is_cached(self):
        cluster = Cluster(MessagePaxos(), ClusterConfig(2, 0))
        assert cluster.env_for(0) is cluster.env_for(0)
