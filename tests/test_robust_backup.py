"""Robust Backup(Paxos) — Theorems 4.2/4.4: WBA with n >= 2f+1."""

import pytest

from repro import (
    EquivocatingBroadcaster,
    FaultPlan,
    PaxosValueLiar,
    RobustBackup,
    SilentByzantine,
    run_consensus,
)
from repro.types import MemoryId


class TestCrashOnlyOperation:
    def test_basic_agreement(self):
        result = run_consensus(RobustBackup(), 3, 3, deadline=5000)
        assert result.all_decided and result.agreed and result.valid

    def test_five_processes(self):
        result = run_consensus(RobustBackup(), 5, 3, deadline=8000)
        assert result.all_decided and result.agreed

    def test_crash_minority(self):
        faults = FaultPlan().crash_process(2, at=0.0)
        result = run_consensus(RobustBackup(), 3, 3, faults=faults, deadline=8000)
        assert result.all_decided and result.agreed

    def test_memory_minority_crash(self):
        faults = FaultPlan().crash_memory(1, at=0.0)
        result = run_consensus(RobustBackup(), 3, 3, faults=faults, deadline=8000)
        assert result.all_decided and result.agreed


class TestByzantineTolerance:
    """n = 2f+1 = 3 with one Byzantine process: every strategy must be
    reduced to (at worst) a crash."""

    def test_silent_byzantine(self):
        faults = FaultPlan().make_byzantine(2, SilentByzantine())
        result = run_consensus(RobustBackup(), 3, 3, faults=faults, deadline=8000)
        assert result.all_decided and result.agreed and result.valid

    def test_equivocating_broadcaster_is_contained(self):
        faults = FaultPlan().make_byzantine(1, EquivocatingBroadcaster())
        result = run_consensus(RobustBackup(), 3, 3, faults=faults, deadline=8000)
        assert result.all_decided and result.agreed
        # The honest processes' decision came from an honest input.
        assert result.decided_values <= {"value-1", "value-3"}

    def test_paxos_liar_is_dropped(self):
        faults = FaultPlan().make_byzantine(1, PaxosValueLiar("EVIL"))
        result = run_consensus(RobustBackup(), 3, 3, faults=faults, deadline=8000)
        assert result.all_decided and result.agreed
        assert "EVIL" not in result.decided_values

    def test_two_byzantine_of_five(self):
        faults = (
            FaultPlan()
            .make_byzantine(3, PaxosValueLiar("EVIL"))
            .make_byzantine(4, EquivocatingBroadcaster())
        )
        result = run_consensus(RobustBackup(), 5, 3, faults=faults, deadline=12_000)
        assert result.all_decided and result.agreed
        assert "EVIL" not in result.decided_values

    def test_byzantine_leader_seat(self):
        # The Byzantine process occupies the Ω-preferred seat; liveness must
        # come from honest proposers taking over.
        faults = FaultPlan().make_byzantine(0, SilentByzantine())
        result = run_consensus(
            RobustBackup(), 3, 3, faults=faults,
            omega=lambda now: 1, deadline=8000,
        )
        assert result.all_decided and result.agreed
