"""Unit tests for OpFuture and Gate plumbing."""

import pytest

from repro.mem.operations import ReadOp
from repro.sim.futures import Gate, OpFuture, count_acked, count_done
from repro.types import MemoryId, OpResult, OpStatus, ProcessId


def _future():
    return OpFuture(ProcessId(0), MemoryId(0), ReadOp("r", ("x",)))


class TestOpFuture:
    def test_resolve_once(self):
        future = _future()
        notified = []
        future.add_waiter(lambda: notified.append(1))
        waiters = future.resolve(OpResult(OpStatus.ACK, 5))
        for w in waiters:
            w()
        assert future.done and future.ok and future.value == 5
        assert notified == [1]

    def test_second_resolve_is_noop(self):
        future = _future()
        future.resolve(OpResult(OpStatus.ACK, 1))
        assert future.resolve(OpResult(OpStatus.NAK)) == []
        assert future.value == 1

    def test_add_waiter_after_done_fires_immediately(self):
        future = _future()
        future.resolve(OpResult(OpStatus.ACK))
        fired = []
        future.add_waiter(lambda: fired.append(True))
        assert fired == [True]

    def test_nak_result_not_ok(self):
        future = _future()
        future.resolve(OpResult(OpStatus.NAK))
        assert future.done and not future.ok

    def test_counting_helpers(self):
        futures = [_future() for _ in range(4)]
        futures[0].resolve(OpResult(OpStatus.ACK))
        futures[1].resolve(OpResult(OpStatus.NAK))
        assert count_done(tuple(futures)) == 2
        assert count_acked(tuple(futures)) == 1

    def test_unique_ids(self):
        assert _future().future_id != _future().future_id


class TestGate:
    def test_set_wakes_current_waiters(self):
        gate = Gate("g")
        fired = []
        gate.add_waiter(lambda: fired.append(1))
        for w in gate.set():
            w()
        assert fired == [1]
        assert gate.is_set

    def test_waiter_after_set_fires_immediately(self):
        gate = Gate("g")
        gate.set()
        fired = []
        gate.add_waiter(lambda: fired.append(1))
        assert fired == [1]

    def test_clear_blocks_new_waiters(self):
        gate = Gate("g")
        gate.set()
        gate.clear()
        fired = []
        gate.add_waiter(lambda: fired.append(1))
        assert fired == []

    def test_remove_waiter(self):
        gate = Gate("g")
        cb = lambda: None
        gate.add_waiter(cb)
        gate.remove_waiter(cb)
        assert gate.set() == []

    def test_remove_unknown_waiter_harmless(self):
        Gate("g").remove_waiter(lambda: None)
