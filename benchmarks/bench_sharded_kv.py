"""E11 — scaling the service layer: shards x batching throughput grid.

The systems descendants of the paper (Mu, DARE, APUS) scale by running
many consensus groups and amortising per-slot cost with batching.  This
bench drives the sharded replicated KV under a Zipfian closed-loop
workload across shard counts {1, 2, 4, 8} and batch caps {1, 8, 32} and
reports committed commands per simulated delay.  Two shapes must hold:

* holding batch at 1, adding shards multiplies throughput (independent
  leaders commit in parallel);
* holding shards at 1, raising the batch cap multiplies throughput (one
  two-delay instance carries many commands).
"""

from repro.shard import (
    ClosedLoopClient,
    ShardConfig,
    ShardedKV,
    YCSB_A,
    ZipfianKeys,
)

from benchmarks._common import emit, once, table

SHARD_COUNTS = [1, 2, 4, 8]
BATCH_SIZES = [1, 8, 32]
N_CLIENTS = 24
OPS_PER_CLIENT = 8
SEED = 7


def _run(n_shards: int, batch_max: int):
    service = ShardedKV(
        ShardConfig(n_shards=n_shards, batch_max=batch_max, seed=SEED)
    )
    clients = [
        ClosedLoopClient(
            client_id=i,
            n_ops=OPS_PER_CLIENT,
            keys=ZipfianKeys(128),
            mix=YCSB_A,
        )
        for i in range(N_CLIENTS)
    ]
    report = service.run_workload(clients)
    assert report.completed_requests == N_CLIENTS * OPS_PER_CLIENT
    return report


def _measure():
    grid = {}
    for n_shards in SHARD_COUNTS:
        for batch_max in BATCH_SIZES:
            grid[(n_shards, batch_max)] = _run(n_shards, batch_max)
    return grid


def test_sharded_kv_scaling(benchmark):
    grid = once(benchmark, _measure)
    rows = []
    for n_shards in SHARD_COUNTS:
        row = [f"{n_shards} shard{'s' if n_shards > 1 else ''}"]
        for batch_max in BATCH_SIZES:
            report = grid[(n_shards, batch_max)]
            row.append(
                f"{report.commands_per_delay:.2f} "
                f"(fill {report.mean_batch_fill:.1f})"
            )
        rows.append(row)
    emit(
        "E11",
        f"Sharded KV throughput: {N_CLIENTS} Zipfian closed-loop clients, "
        f"{N_CLIENTS * OPS_PER_CLIENT} commands, 3 replicas, 3 memories",
        table(
            ["configuration"] + [f"batch {b}" for b in BATCH_SIZES],
            rows,
        ),
        notes=(
            "Cells: committed commands per simulated delay (mean batch fill).\n"
            "Shape: throughput grows along both axes — independent shard\n"
            "leaders commit slots in parallel, and batching amortises the\n"
            "two-delay Protected Memory Paxos instance across many commands."
        ),
    )

    baseline = grid[(1, 1)].commands_per_delay
    # the acceptance bar: 4 shards with batching beat the seed-equivalent
    # configuration by at least 4x on the same seed
    assert grid[(4, 8)].commands_per_delay >= 4.0 * baseline
    # sharding alone scales: 4 shards / batch 1 at least doubles throughput
    assert grid[(4, 1)].commands_per_delay >= 2.0 * baseline
    # batching alone scales: 1 shard / batch 32 at least doubles throughput
    assert grid[(1, 32)].commands_per_delay >= 2.0 * baseline
    # the seed fast path survives underneath: ~0.5 commands/delay unsharded
    assert 0.35 <= baseline <= 0.65
