"""E15 — kernel hot-path throughput: dispatch tables, allocation-free wakes.

The PR 2 engine overhaul replaced the kernel's isinstance dispatch, per
event lambda closures and double-entry wake path with typed queue entries,
flat dispatch tables, a same-instant ready lane and direct resumes.  This
bench pins the result: it drives the three canonical hot paths —

* ``message_storm``  — pure messaging (send → deliver → resume);
* ``mem_op_storm``   — pure memory operations (the paper's RDMA primitive:
  invoke → arrive → apply → resolve → resume);
* ``e11_sharded_kv`` — the full E11 sharded-KV service workload (4 shards,
  batch 8, Zipfian closed-loop YCSB-A clients);

— and compares *schedule-invariant* simulated events per second (messages
delivered + memory-op legs; each costs one virtual delay, and the figure
cannot be gamed by scheduling the same work with fewer queue entries)
against the pre-PR kernel, measured with the identical harness
(``benchmarks/perf.py``) on the same host, interleaved best-of runs.

Recorded pre-PR reference (conservative bests across sessions):

=================  ===========  ===========  ========
workload           pre-PR       post-PR      speedup
=================  ===========  ===========  ========
message_storm       83.7k/s     194.8k/s     2.33x
mem_op_storm       132.4k/s     557.4k/s     4.21x
e11_sharded_kv      31.8k/s      65.4k/s     2.04x
=================  ===========  ===========  ========

The wall-clock floor assertions below use margins well under the measured
ratios so the bench stays green on a moderately slower machine; set
``REPRO_PERF_STRICT=1`` to assert the full measured ratios instead.
Schedule determinism (identical event/commit counts across two runs of the
same seed) is asserted unconditionally.
"""

import os

from benchmarks._common import emit, once, table
from benchmarks.perf import WORKLOADS

#: pre-PR sim_events_per_sec, measured with benchmarks/perf.py on the commit
#: preceding this PR (interleaved A/B on the same host, best of 7+ runs).
PRE_PR_SIM_EVENTS_PER_SEC = {
    "message_storm": 83_705.0,
    "mem_op_storm": 132_363.0,
    "e11_sharded_kv": 31_768.0,
}

#: minimum speedup vs pre-PR each workload must keep (conservative floors
#: under the measured 2.33x / 4.21x / 2.04x, leaving headroom for slower
#: hosts); REPRO_PERF_STRICT=1 raises them to the measured ratios.
SPEEDUP_FLOORS = {
    "message_storm": 1.5,
    "mem_op_storm": 3.0,
    "e11_sharded_kv": 1.4,
}
STRICT_SPEEDUPS = {
    "message_storm": 2.3,
    "mem_op_storm": 4.2,
    "e11_sharded_kv": 2.0,
}

RUNS = 5


def _measure_all():
    # Only the workloads that existed pre-engine-overhaul have a reference
    # figure; later additions (e18_read_paths, ...) are gated by perf.py.
    results = {}
    for name in PRE_PR_SIM_EVENTS_PER_SEC:
        fn = WORKLOADS[name]
        best = None
        first_stats = None
        for i in range(RUNS):
            wall, stats = fn()
            if first_stats is None:
                first_stats = dict(stats)
            else:
                # Determinism: a fixed seed must reproduce the identical
                # schedule — same scheduler entries, same simulated events,
                # same commits — on every run.
                assert stats == first_stats, (name, stats, first_stats)
            best = wall if best is None else min(best, wall)
        results[name] = {
            "wall": best,
            "events": first_stats["events"],
            "sim_events": first_stats["sim_events"],
            "commits": first_stats["commits"],
            "sim_ev_per_sec": first_stats["sim_events"] / best,
        }
    return results


def test_kernel_hotpath_throughput(benchmark):
    results = once(benchmark, _measure_all)

    floors = STRICT_SPEEDUPS if os.environ.get("REPRO_PERF_STRICT") else SPEEDUP_FLOORS
    rows = []
    for name, r in results.items():
        pre = PRE_PR_SIM_EVENTS_PER_SEC[name]
        speedup = r["sim_ev_per_sec"] / pre
        rows.append(
            [
                name,
                f"{pre:,.0f}",
                f"{r['sim_ev_per_sec']:,.0f}",
                f"{speedup:.2f}x",
                f"{r['events']:,}",
                f"{r['wall']*1000:.1f} ms",
            ]
        )
    emit(
        "E15",
        "Kernel hot-path throughput vs pre-PR engine "
        f"(schedule-invariant simulated events/sec, best of {RUNS})",
        table(
            ["workload", "pre-PR sim-ev/s", "now sim-ev/s", "speedup",
             "queue events", "wall"],
            rows,
        ),
        notes=(
            "sim events = messages delivered + memory-op legs (2/op): the\n"
            "schedule-invariant unit (one virtual delay each), comparable\n"
            "across engine versions that schedule the same work with\n"
            "different queue-entry counts.  Recorded pre-PR figures were\n"
            "measured with benchmarks/perf.py on the same host as this\n"
            "PR's development (see module docstring); refresh them if the\n"
            "reference hardware changes.  Shape: the memory-operation hot\n"
            "path — the paper's RDMA primitive — gained >4x (measured),\n"
            "messaging >2.3x, and the full E11 sharded service ~2x\n"
            "end-to-end (its time is now dominated by protocol logic, not\n"
            "the kernel)."
        ),
    )

    # The E11 workload must have actually committed its traffic.
    e11 = results["e11_sharded_kv"]
    assert e11["commits"] == 96 * 50

    for name, r in results.items():
        speedup = r["sim_ev_per_sec"] / PRE_PR_SIM_EVENTS_PER_SEC[name]
        assert speedup >= floors[name], (
            f"{name}: {speedup:.2f}x below the {floors[name]}x floor "
            f"({r['sim_ev_per_sec']:,.0f} vs pre-PR "
            f"{PRE_PR_SIM_EVENTS_PER_SEC[name]:,.0f} sim-ev/s)"
        )
