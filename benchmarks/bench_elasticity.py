"""E17 — elasticity: live splits/merges under load, cutover cost, fencing.

Two halves, both under continuous closed-loop load:

* **Split grid** — start at 2 shards, commit a live split (2 -> 3, and
  3 -> 4 off the smoke path).  For each epoch: keys migrated, the
  commit-to-activation window (how long the dual-ownership dance takes),
  and throughput/p99 measured separately before and after the cutover.
* **Merge** — retire one of three shards under load.  The victim's log
  region is permission-fenced to the tombstone at the memories; the
  report carries the fence ACK count and proves the deposed leader NAKs.

Shapes asserted: no request is ever lost across any cutover; a split
moves a bounded fraction of the keyspace (the consistent-hashing
~1/(n+1) promise, with vnode slack); the activation window is bounded
and migration-sized, not workload-sized; the retired region refuses its
old-epoch leader's writes at every memory.

Run ``python benchmarks/bench_elasticity.py --json out.json`` for
machine-readable output (``--smoke`` shrinks the grid for CI).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

if __name__ == "__main__":  # standalone: make src/ importable like perf.py
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro import (
    ClosedLoopClient,
    ElasticConfig,
    ElasticKV,
    MergeShard,
    ScriptedClient,
    SplitShard,
    ZipfianKeys,
)
from repro.mem.operations import WriteOp
from repro.shard.service import shard_region
from repro.types import OpStatus, ProcessId

SCHEMA = "repro-bench-elasticity/1"


def _phase_stats(ledger, boundary: float, start: float, end: float):
    """(rate, p99) of completed requests before vs after *boundary*."""
    from repro.metrics.workload import percentile

    before, after = [], []
    for samples in ledger.shard_latencies.values():
        for t, latency in samples:
            (before if t <= boundary else after).append(latency)
    span_before = max(1e-9, boundary - start)
    span_after = max(1e-9, end - boundary)
    return {
        "before": {
            "requests": len(before),
            "rate_per_ktime": 1000.0 * len(before) / span_before,
            "p99": percentile(before, 0.99) if before else 0.0,
        },
        "after": {
            "requests": len(after),
            "rate_per_ktime": 1000.0 * len(after) / span_after,
            "p99": percentile(after, 0.99) if after else 0.0,
        },
    }


def _workload(n_clients: int, n_ops: int, think: float = 4.0):
    return [
        ClosedLoopClient(
            client_id=10 + i,
            n_ops=n_ops,
            keys=ZipfianKeys(120, prefix="zk"),
            think_time=think,
        )
        for i in range(n_clients)
    ]


def _seeders(n_keys: int):
    scripts = [[] for _ in range(3)]
    for i in range(n_keys):
        scripts[i % 3].append(("put", f"zk{i}", f"seed-{i}"))
    return [
        ScriptedClient(client_id=100 + w, script=scripts[w]) for w in range(3)
    ]


# ----------------------------------------------------------------------
# part A: live splits
# ----------------------------------------------------------------------
def measure_splits(split_times) -> dict:
    service = ElasticKV(
        ElasticConfig(
            n_shards=2, n_processes=3, batch_max=4, seed=17,
            retry_timeout=25.0, deadline=120_000.0,
        )
    )
    for at in split_times:
        service.schedule_reconfig(at, SplitShard())
    started = service.kernel.now
    report = service.run_workload(_seeders(120) + _workload(4, 80))
    assert report.ok, f"requests lost across the split: {report.summary()}"
    ledger = service.kernel.metrics
    activations = ledger.reconfigs_of("activate")
    commits = ledger.reconfigs_of("cfg_commit")
    assert len(activations) == len(split_times)
    epochs = []
    moved_by_epoch = service.moved_by_epoch()
    for commit, activation in zip(commits, activations):
        number = int(activation.subject[1:])
        epochs.append(
            {
                "epoch": number,
                "shards_after": activation.detail["shards"],
                "moved_keys": moved_by_epoch.get(number, 0),
                "committed_at": commit.time,
                "activated_at": activation.time,
                "cutover_window": activation.time - commit.time,
            }
        )
    phases = _phase_stats(
        ledger, activations[0].time, started, service.kernel.now
    )
    # keyspace movement: the sampled fraction of the seeded universe that
    # changed owner between ring 0 and ring 1
    moved_fraction = sum(
        1
        for i in range(120)
        if service.partitioner.shard_for(f"zk{i}", version=0)
        != service.partitioner.shard_for(f"zk{i}", version=1)
    ) / 120.0
    return {
        "completed_requests": report.completed_requests,
        "elapsed": report.elapsed,
        "epochs": epochs,
        "first_split": phases,
        "moved_fraction_2_to_3": moved_fraction,
        "violations": len(ledger.violations),
    }


# ----------------------------------------------------------------------
# part B: live merge + tombstone fencing
# ----------------------------------------------------------------------
def measure_merge(merge_at: float = 220.0) -> dict:
    service = ElasticKV(
        ElasticConfig(
            n_shards=3, n_processes=3, batch_max=4, seed=19,
            retry_timeout=25.0, deadline=120_000.0,
        )
    )
    victim = 2
    old_leader = service.leader_of(victim)
    service.schedule_reconfig(merge_at, MergeShard(victim))
    report = service.run_workload(_seeders(90) + _workload(3, 60))
    assert report.ok, f"requests lost across the merge: {report.summary()}"
    ledger = service.kernel.metrics
    fences = [
        record
        for record in ledger.reconfigs_of("fence")
        if record.subject == shard_region(victim)
    ]
    naks = 0
    for memory in service.kernel.memories:
        result = memory.apply(
            ProcessId(old_leader),
            WriteOp(shard_region(victim), (shard_region(victim), 9_999, old_leader), "x"),
        )
        naks += result.status == OpStatus.NAK
    return {
        "completed_requests": report.completed_requests,
        "elapsed": report.elapsed,
        "moved_keys": sum(service.moved_by_epoch().values()),
        "fence_acks": fences[0].detail["acked"] if fences else 0,
        "old_leader_write_naks": naks,
        "n_memories": len(service.kernel.memories),
        "shards_after": list(service.shards),
        "violations": len(ledger.violations),
    }


# ----------------------------------------------------------------------
# report assembly
# ----------------------------------------------------------------------
def measure(smoke: bool = False) -> dict:
    split_times = [260.0] if smoke else [260.0, 560.0]
    return {
        "schema": SCHEMA,
        "splits": measure_splits(split_times),
        "merge": measure_merge(),
    }


def check_shapes(report: dict) -> None:
    splits = report["splits"]
    assert splits["violations"] == 0
    # consistent hashing: 2 -> 3 moves roughly a third of the keyspace,
    # never more than the vnode-variance envelope
    assert 0.12 <= splits["moved_fraction_2_to_3"] <= 0.60, splits
    for epoch in splits["epochs"]:
        assert epoch["moved_keys"] > 0, epoch
        # the cutover window is migration-sized (hundreds of delays at
        # most for ~dozens of keys), never workload-sized
        assert epoch["cutover_window"] < 500.0, epoch
    after = splits["first_split"]["after"]
    before = splits["first_split"]["before"]
    assert before["requests"] > 0 and after["requests"] > 0
    merge = report["merge"]
    assert merge["violations"] == 0
    assert merge["shards_after"] == [0, 1]
    assert merge["moved_keys"] > 0
    # the fence is total: every memory NAKs the deposed leader
    assert merge["old_leader_write_naks"] == merge["n_memories"]


def render(report: dict) -> str:
    from repro.metrics.reporting import format_table as table

    splits = report["splits"]
    lines = [
        table(
            ["epoch", "shards after", "moved keys", "cutover window"],
            [
                [
                    f"e{row['epoch']}",
                    "-".join(str(s) for s in row["shards_after"]),
                    row["moved_keys"],
                    f"{row['cutover_window']:g}",
                ]
                for row in splits["epochs"]
            ],
        ),
        "",
        table(
            ["phase", "requests", "rate/ktime", "p99"],
            [
                [
                    phase,
                    stats["requests"],
                    f"{stats['rate_per_ktime']:.1f}",
                    f"{stats['p99']:g}",
                ]
                for phase, stats in report["splits"]["first_split"].items()
            ],
        ),
        "",
        table(
            ["merge metric", "value"],
            [
                ["moved keys", report["merge"]["moved_keys"]],
                ["fence acks", report["merge"]["fence_acks"]],
                [
                    "old-leader write NAKs",
                    f"{report['merge']['old_leader_write_naks']}"
                    f"/{report['merge']['n_memories']}",
                ],
            ],
        ),
    ]
    return "\n".join(lines)


def test_elasticity(benchmark):
    from benchmarks._common import emit, once

    report = once(benchmark, measure)
    check_shapes(report)
    emit(
        "E17",
        "Elasticity: live shard splits/merges with permission-fenced cutover",
        render(report),
        notes="The cutover window is the dual-ownership dance (bulk stream, "
        "seal, barrier, delta, activate); requests in flight across it are "
        "carried by resend + dedup.  The merge's tombstone fence is checked "
        "directly: the deposed leader's writes NAK at every memory.",
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small CI grid")
    parser.add_argument("--json", type=pathlib.Path, default=None,
                        help="write the machine-readable report here")
    args = parser.parse_args()
    report = measure(smoke=args.smoke)
    check_shapes(report)
    print(render(report))
    if args.json is not None:
        args.json.write_text(json.dumps(report, indent=2) + "\n")
        print(f"\nwrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
