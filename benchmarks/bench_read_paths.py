"""E18 — read paths: consensus-read vs leader-read vs quorum-read.

Two halves:

* **Mode grid** — a read-mostly (95% get) Zipfian closed-loop workload
  over a 2-shard service, served three ways: every get committed through
  consensus (the seed behaviour), permission-fenced leader reads (local
  applied state validated by a one-sided grant probe), and one-sided
  quorum reads (commit watermark + entries straight from a majority of
  memories, no leader involvement).  Reported per cell: read throughput
  (reads per kilo-delay), read p50/p99, achieved read mix (counted per
  completion, so a skewed run cannot misreport itself), and fallbacks.
* **Chaos composition** — the acceptance run: a permission-revocation
  storm, a partition + heal, and a live 2→3 elastic split under a
  mixed-mode workload.  Every request must complete and the staleness
  counter must stay zero — the fault plane may force fallbacks, never a
  stale answer.

Shapes asserted (the issue's acceptance): on the 95%-read workload the
fenced leader path serves >= 3x and the quorum path >= 2x the consensus
baseline's reads/sec, with zero staleness violations across the chaos
composition.

Run ``python benchmarks/bench_read_paths.py --json out.json`` for
machine-readable output (``--smoke`` shrinks the grid for CI).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

if __name__ == "__main__":  # standalone: make src/ importable like perf.py
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro import (
    ClosedLoopClient,
    ElasticConfig,
    ElasticKV,
    FaultScript,
    OperationMix,
    READ_LEADER,
    READ_QUORUM,
    ScriptedClient,
    ShardConfig,
    ShardedKV,
    SplitShard,
    ZipfianKeys,
)
from repro.shard.service import shard_region

SCHEMA = "repro-bench-read-paths/1"

#: acceptance floors: reads/sec of each path vs the consensus baseline
LEADER_FLOOR = 3.0
QUORUM_FLOOR = 2.0


def _clients(n, n_ops, read_mode=None, think=0.0, base=0, read_fraction=0.95):
    return [
        ClosedLoopClient(
            client_id=base + i,
            n_ops=n_ops,
            keys=ZipfianKeys(256, prefix="bk"),
            mix=OperationMix(read_fraction=read_fraction),
            think_time=think,
            read_mode=read_mode,
        )
        for i in range(n)
    ]


# ----------------------------------------------------------------------
# part A: the mode grid
# ----------------------------------------------------------------------
def measure_modes(client_counts, n_ops) -> dict:
    cells = []
    for n_clients in client_counts:
        row = {}
        for mode in ("consensus", READ_LEADER, READ_QUORUM):
            service = ShardedKV(
                ShardConfig(
                    n_shards=2, n_processes=3, batch_max=4, seed=17,
                    read_mode=mode, deadline=10.0**7,
                )
            )
            report = service.run_workload(_clients(n_clients, n_ops))
            assert report.ok, f"{mode} run lost requests: {report.summary()}"
            ledger = service.kernel.metrics
            reads = report.read_latency_summary()
            row[mode] = {
                "clients": n_clients,
                "reads": report.completed_reads,
                "reads_per_ktime": 1000.0 * report.reads_per_delay,
                "read_p50": reads.p50,
                "read_p99": reads.p99,
                "achieved_read_fraction": round(report.achieved_read_fraction, 4),
                "served_by_mode": ledger.total_reads_served(mode),
                "fallbacks": ledger.total_read_fallbacks(),
                "staleness_violations": ledger.staleness_violations,
            }
            assert ledger.staleness_violations == 0
            # achieved mix is reported per completion and must track the
            # requested 95% (binomial noise only) — the accounting fix
            assert abs(row[mode]["achieved_read_fraction"] - 0.95) < 0.05
        base = row["consensus"]["reads_per_ktime"]
        for mode in (READ_LEADER, READ_QUORUM):
            row[mode]["speedup_vs_consensus"] = round(
                row[mode]["reads_per_ktime"] / base, 2
            )
        cells.append(row)
    # the acceptance gate holds on the largest (most contended) cell:
    # consensus reads queue behind batch_max while the fenced/one-sided
    # paths serve every pending read per probe/quorum round
    biggest = cells[-1]
    assert biggest[READ_LEADER]["speedup_vs_consensus"] >= LEADER_FLOOR, biggest
    assert biggest[READ_QUORUM]["speedup_vs_consensus"] >= QUORUM_FLOOR, biggest
    return {"cells": cells}


# ----------------------------------------------------------------------
# part B: the chaos composition (storm + partition/heal + live split)
# ----------------------------------------------------------------------
def measure_chaos(n_ops) -> dict:
    script = FaultScript()
    script.at(60.0).permission_storm(
        pid=2, region=shard_region(0), shots=10, spacing=6.0
    )
    script.at(150.0).partition({0, 1}, {2}).heal(at=400.0)
    service = ElasticKV(
        ElasticConfig(
            n_shards=2, n_processes=3, batch_max=4, seed=11,
            read_mode=READ_LEADER, retry_timeout=30.0,
            deadline=400_000.0, faults=script,
        )
    )
    service.schedule_reconfig(220.0, SplitShard())
    seeds = [
        ScriptedClient(
            client_id=100 + w,
            script=[("put", f"bk{i}", f"s{i}") for i in range(w, 48, 3)],
        )
        for w in range(3)
    ]
    clients = (
        _clients(4, n_ops, think=2.0)
        + _clients(3, n_ops, read_mode=READ_QUORUM, think=2.0, base=40)
    )
    report = service.run_workload(seeds + clients)
    ledger = service.kernel.metrics
    assert report.ok, f"requests lost under chaos: {report.summary()}"
    assert service.shards == [0, 1, 2], "the split never activated"
    assert ledger.staleness_violations == 0, ledger.stale_reads
    assert ledger.total_read_fallbacks() > 0, "the storm never forced a fallback"
    return {
        "completed": report.completed_requests,
        "elapsed": report.elapsed,
        "shards_after": service.shards,
        "reads_served": {
            f"g{shard}:{mode}": count
            for (shard, mode), count in sorted(ledger.reads_served.items())
        },
        "fallbacks": {
            f"g{shard}:{mode}": count
            for (shard, mode), count in sorted(ledger.read_fallbacks.items())
        },
        "staleness_violations": ledger.staleness_violations,
        "perm_faults": len(ledger.faults_of("perm_change")),
    }


# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="shrink the grid for CI")
    parser.add_argument("--json", type=pathlib.Path, default=None,
                        help="write a machine-readable report here")
    args = parser.parse_args(argv)

    client_counts = (96,) if args.smoke else (48, 96)
    n_ops = 20 if args.smoke else 30
    modes = measure_modes(client_counts, n_ops)
    chaos = measure_chaos(15 if args.smoke else 30)

    from _common import emit, table

    rows = []
    for row in modes["cells"]:
        for mode in ("consensus", READ_LEADER, READ_QUORUM):
            cell = row[mode]
            rows.append(
                [
                    cell["clients"],
                    mode,
                    f"{cell['reads_per_ktime']:.0f}",
                    f"{cell.get('speedup_vs_consensus', 1.0):.2f}x",
                    f"{cell['read_p50']:.0f}",
                    f"{cell['read_p99']:.0f}",
                    f"{cell['achieved_read_fraction']:.3f}",
                    cell["fallbacks"],
                ]
            )
    emit(
        "E18",
        "Read paths: consensus vs fenced leader vs one-sided quorum "
        "(95%-read Zipfian, closed loop)",
        table(
            ["clients", "mode", "reads/ktime", "speedup", "p50", "p99",
             "achieved mix", "fallbacks"],
            rows,
        ),
        notes=(
            f"chaos composition: {chaos['completed']} requests across storm + "
            f"partition/heal + 2->3 split, {chaos['staleness_violations']} "
            f"staleness violations, fallbacks {chaos['fallbacks']}"
        ),
    )
    if args.json is not None:
        args.json.write_text(
            json.dumps(
                {"schema": SCHEMA, "modes": modes, "chaos": chaos}, indent=2
            )
            + "\n"
        )
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
