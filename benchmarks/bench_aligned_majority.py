"""E5 — Section 5.2: Aligned Paxos survives any combined-agent minority.

Sweeps every (process crashes, memory crashes) split for n=3, m=3 — six
agents, tolerance = 2 — and checks the boundary is exactly the combined
majority, regardless of how the crashes divide between agent kinds.
"""

import pytest

from repro import AlignedPaxos, FaultPlan
from repro.consensus.omega import crash_aware_omega
from repro.core.cluster import Cluster, ClusterConfig

from benchmarks._common import emit, once, table

N, M = 3, 3


def _run(fp, fm, deadline):
    faults = FaultPlan()
    for pid in range(fp):
        # Crash from the tail so the initial leader survives where possible.
        faults.crash_process(N - 1 - pid, at=1.0)
    for mid in range(fm):
        faults.crash_memory(mid, at=1.0)
    cluster = Cluster(
        AlignedPaxos(), ClusterConfig(N, M, deadline=deadline), faults
    )
    cluster.kernel.omega = crash_aware_omega(cluster.kernel)
    return cluster.run([f"v{p}" for p in range(N)])


def _measure():
    tolerance = (N + M - 1) // 2
    rows = []
    for fp in range(0, N):
        for fm in range(0, M + 1):
            total = fp + fm
            if total > tolerance + 1:
                continue  # deep beyond the bound: same blocked outcome
            within = total <= tolerance
            result = _run(fp, fm, deadline=12_000 if within else 700)
            rows.append(
                [
                    fp,
                    fm,
                    total,
                    "yes" if within else "no",
                    "decided" if result.all_decided else "blocked",
                    "yes" if not result.metrics.violations else "NO",
                ]
            )
            if within:
                assert result.all_decided and result.agreed, (fp, fm)
            else:
                assert not result.all_decided and not result.metrics.violations
    return rows


def test_aligned_combined_majority(benchmark):
    rows = once(benchmark, _measure)
    emit(
        "E5",
        f"Aligned Paxos over {N}+{M} agents: combined-minority sweep",
        table(
            ["proc crashes", "mem crashes", "total", "within bound", "outcome",
             "safe"],
            rows,
        ),
        notes=(
            "Shape: the decided/blocked boundary tracks total agents lost,\n"
            "not which kind — processes and memories are interchangeable\n"
            "(the paper's Section 5.2 equivalence)."
        ),
    )
