"""E11 (extension) — ablations of the design choices DESIGN.md calls out.

Three knife cuts that locate exactly where the paper's two delays come
from:

1. Protected Memory Paxos with the first-attempt permission skip turned
   *off*: the full prepare phase returns, 2 -> 8 delays.
2. Fast & Robust with Cheap Quorum turned *off*: the fast path disappears
   and the composed algorithm degrades to its backup latency.
3. Aligned Paxos `protected` vs `disk` memory handling: the confirming
   read re-appears, 2 -> 4+ delays (footnote 4's trade).
"""

import pytest

from repro import (
    AlignedConfig,
    AlignedPaxos,
    FastRobust,
    FastRobustConfig,
    PmpConfig,
    ProtectedMemoryPaxos,
    run_consensus,
)
from repro.consensus.cheap_quorum import CheapQuorumConfig

from benchmarks._common import emit, once, table


def _measure():
    rows = []

    pmp_on = run_consensus(ProtectedMemoryPaxos(), 3, 3, deadline=10_000)
    # pin batch_chains off so the restored prepare shows its classic
    # three-round cost; doorbell batching fuses it into one round
    pmp_off = run_consensus(
        ProtectedMemoryPaxos(
            PmpConfig(skip_first_attempt=False, batch_chains=False)
        ),
        3, 3, deadline=10_000,
    )
    pmp_off_batched = run_consensus(
        ProtectedMemoryPaxos(PmpConfig(skip_first_attempt=False)), 3, 3,
        deadline=10_000,
    )
    rows.append(["PMP", "permission skip ON", f"{pmp_on.earliest_decision_delay:g}"])
    rows.append(["PMP", "permission skip OFF", f"{pmp_off.earliest_decision_delay:g}"])
    rows.append(
        ["PMP", "skip OFF + batched chains",
         f"{pmp_off_batched.earliest_decision_delay:g}"]
    )

    fr_on = run_consensus(FastRobust(), 3, 3, deadline=30_000)
    fr_off = run_consensus(
        FastRobust(FastRobustConfig(enable_fast_path=False)), 3, 3,
        deadline=60_000,
    )
    rows.append(
        ["Fast & Robust", "Cheap Quorum ON", f"{fr_on.earliest_decision_delay:g}"]
    )
    rows.append(
        ["Fast & Robust", "Cheap Quorum OFF", f"{fr_off.earliest_decision_delay:g}"]
    )

    ap_protected = run_consensus(AlignedPaxos(), 3, 3, deadline=10_000)
    ap_disk = run_consensus(
        AlignedPaxos(AlignedConfig(variant="disk")), 3, 3, deadline=10_000
    )
    rows.append(
        ["Aligned Paxos", "protected memories",
         f"{ap_protected.earliest_decision_delay:g}"]
    )
    rows.append(
        ["Aligned Paxos", "disk-style memories",
         f"{ap_disk.earliest_decision_delay:g}"]
    )

    checks = (
        pmp_on.earliest_decision_delay == 2.0
        and pmp_off.earliest_decision_delay >= 8.0
        and pmp_off_batched.earliest_decision_delay == 4.0
        and fr_on.earliest_decision_delay == 2.0
        and fr_off.earliest_decision_delay > 2.0
        and ap_protected.earliest_decision_delay == 2.0
        and ap_disk.earliest_decision_delay >= 4.0
    )
    return rows, checks


def test_design_choice_ablations(benchmark):
    rows, checks = once(benchmark, _measure)
    emit(
        "E11",
        "Ablations: each fast-path ingredient removed in isolation",
        table(["algorithm", "configuration", "delays"], rows),
        notes=(
            "Shape: removing the permission skip, the Cheap Quorum fast\n"
            "path, or the protected memory handling individually restores\n"
            "the latency each mechanism was built to eliminate."
        ),
    )
    assert checks
