"""Shared helpers for the benchmark suite.

Every benchmark regenerates one paper artefact (see DESIGN.md's
per-experiment index): it runs the relevant simulations once via
``benchmark.pedantic`` (simulations are deterministic; re-running them only
re-measures the simulator, not the algorithm), prints the paper-shaped
table, persists it under ``benchmarks/reports/`` and asserts the
qualitative shape the paper claims.
"""

from __future__ import annotations

import pathlib
from typing import Iterable, Sequence

from repro.metrics.reporting import format_table

REPORTS = pathlib.Path(__file__).parent / "reports"


def emit(experiment_id: str, title: str, table: str, notes: str = "") -> str:
    """Print and persist one experiment's table; returns the rendered text."""
    text = f"[{experiment_id}] {title}\n\n{table}\n"
    if notes:
        text += f"\n{notes}\n"
    print("\n" + text)
    REPORTS.mkdir(exist_ok=True)
    (REPORTS / f"{experiment_id.lower()}.txt").write_text(text)
    return text


def table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    return format_table(headers, rows)


def once(benchmark, fn):
    """Run *fn* exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
