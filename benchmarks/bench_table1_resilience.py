"""E1 — Table 1: fault-tolerance landscape for Byzantine agreement.

The paper's Table 1 places its result (async, signatures, RDMA-provided
non-equivocation, resiliency 2f+1) against the literature.  The literature
rows are known bounds; our row is *measured*: Fast & Robust reaches
agreement with n = 2f+1 = 3 under each Byzantine strategy we implement, and
blocks safely (never splits) one step beyond the bound.
"""

import pytest

from repro import (
    CheapQuorumEquivocatorLeader,
    EquivocatingBroadcaster,
    FastRobust,
    FastRobustConfig,
    FaultPlan,
    PaxosValueLiar,
    SilentByzantine,
    run_consensus,
)
from repro.consensus.cheap_quorum import CheapQuorumConfig

from benchmarks._common import emit, once, table

_FALLBACK_CONFIG = FastRobustConfig(
    cheap_quorum=CheapQuorumConfig(leader_timeout=15.0, unanimity_timeout=25.0)
)

_STRATEGIES = [
    ("silent", SilentByzantine(), 2, None),
    ("neb-equivocator", EquivocatingBroadcaster(), 2, None),
    ("paxos-liar", PaxosValueLiar("EVIL"), 2, None),
    ("cq-equivocating-leader", CheapQuorumEquivocatorLeader(), 0, 1),
]


def _measure_our_row():
    """n = 2f+1 = 3, one Byzantine process of each strategy."""
    outcomes = []
    for name, strategy, seat, leader in _STRATEGIES:
        faults = FaultPlan().make_byzantine(seat, strategy)
        result = run_consensus(
            FastRobust(_FALLBACK_CONFIG), 3, 3, faults=faults,
            omega=(lambda now: leader) if leader is not None else None,
            deadline=30_000,
        )
        ok = result.all_decided and result.agreed and not result.metrics.violations
        outcomes.append((name, ok, "EVIL" not in result.decided_values))
    return outcomes


def _measure_beyond_bound():
    """n = 3 with f = 2 Byzantine: below n >= 2f+1 — the agreement machinery
    (Robust Backup's quorums) must block rather than let the lone honest
    process "agree" with forgeries; it must never record a violation."""
    from repro import RobustBackup

    faults = (
        FaultPlan()
        .make_byzantine(1, SilentByzantine())
        .make_byzantine(2, SilentByzantine())
    )
    result = run_consensus(RobustBackup(), 3, 3, faults=faults, deadline=800)
    return (not result.all_decided, not result.metrics.violations)


def test_table1_resilience(benchmark):
    our_row, beyond = once(
        benchmark, lambda: (_measure_our_row(), _measure_beyond_bound())
    )

    rows = [
        ["[39] (LSP)", "sync", "yes", "no", "2f+1", "(literature)"],
        ["[39] (LSP)", "sync", "no", "no", "3f+1", "(literature)"],
        ["[4, 40]", "async", "yes", "yes", "3f+1", "(literature)"],
        ["[20] Clement et al.", "async", "yes", "no", "3f+1", "(literature)"],
        ["[20] Clement et al.", "async", "yes", "yes", "2f+1", "(literature)"],
    ]
    for name, agreed, uncorrupted in our_row:
        rows.append(
            [
                f"This paper (byz={name})",
                "async",
                "yes",
                "RDMA",
                "2f+1",
                "OK" if (agreed and uncorrupted) else "FAILED",
            ]
        )
    blocked, safe = beyond
    rows.append(
        [
            "This paper, f = 2 at n = 3 (beyond bound)",
            "async",
            "yes",
            "RDMA",
            "-",
            "blocks safely" if (blocked and safe) else "FAILED",
        ]
    )
    emit(
        "E1",
        "Table 1 — Byzantine agreement resilience (measured rows marked OK)",
        table(
            ["work", "synchrony", "signatures", "non-equiv", "resiliency", "measured"],
            rows,
        ),
        notes=(
            "Measured: Fast & Robust with n=3=2f+1 reaches weak Byzantine\n"
            "agreement against every implemented strategy; with n=2 it blocks\n"
            "without ever violating agreement."
        ),
    )

    assert all(agreed and clean for _n, agreed, clean in our_row)
    assert beyond == (True, True)
