"""E16 — partition failover: recovery latency under scripted churn.

Two halves, both driven by event-driven FaultScripts:

* **Consensus** — partition the minority away for a sweep of durations,
  heal, and measure how long the minority needs to rejoin (decide) after
  the heal, per protocol.  The rejoin runs through the *memories* (the
  permission-takeover read), so the post-heal latency should be a small,
  duration-independent constant — the paper's point that RDMA permissions
  make the failure landscape's history irrelevant once it heals.
* **Sharded SMR** — crash one shard's leader for a sweep of downtimes
  while the other shards keep serving; measure end-to-end commits/sec and
  the settle latency after the leader returns: time until every request
  (including those stalled against the dead leader) completed and all
  replicas converged again (prepare re-adoption + follower catch-up).

Shapes asserted: rejoin latency ~constant across partition durations;
longer downtime lowers whole-run commits/sec but never loses a request;
the post-return settle latency stays bounded regardless of downtime.

Run ``python benchmarks/bench_partition_failover.py --json out.json`` for
machine-readable output (``--smoke`` shrinks the grid for CI).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

if __name__ == "__main__":  # standalone: make src/ importable like perf.py
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro import (
    AlignedConfig,
    AlignedPaxos,
    ClosedLoopClient,
    FaultScript,
    ProtectedMemoryPaxos,
    ShardConfig,
    ShardedKV,
)
from repro.core import scenarios

SCHEMA = "repro-bench-partition-failover/1"

_PROTOCOLS = {
    "protected-memory-paxos": lambda: ProtectedMemoryPaxos(),
    "aligned-paxos": lambda: AlignedPaxos(AlignedConfig(variant="protected")),
}


# ----------------------------------------------------------------------
# part A: consensus — partition duration x protocol
# ----------------------------------------------------------------------
def measure_consensus(durations) -> list:
    rows = []
    for name, make in _PROTOCOLS.items():
        for duration in durations:
            partition_at, heal_at = 1.0, 1.0 + duration
            cluster = scenarios.partition_minority(
                make(), partition_at=partition_at, heal_at=heal_at
            )
            result = cluster.run(["a", "b", "c"])
            assert result.all_decided and result.agreed, (name, duration)
            minority_decided = result.metrics.decisions[2].decided_at
            rows.append(
                {
                    "protocol": name,
                    "partition_duration": duration,
                    "healed_at": heal_at,
                    "minority_decided_at": minority_decided,
                    "rejoin_latency": minority_decided - heal_at,
                    "messages_lost": cluster.kernel.network.partition_dropped,
                }
            )
    return rows


# ----------------------------------------------------------------------
# part B: sharded SMR — leader downtime x throughput
# ----------------------------------------------------------------------
class _PoolKeys:
    def __init__(self, keys):
        self._keys = list(keys)

    def next_key(self, rng):
        return self._keys[rng.randrange(len(self._keys))]


def _shard_key_pools(service, per_shard=4):
    pools = {g: [] for g in range(service.config.n_shards)}
    index = 0
    while any(len(pool) < per_shard for pool in pools.values()):
        key = f"k{index}"
        index += 1
        shard = service.partitioner.shard_for(key)
        if len(pools[shard]) < per_shard:
            pools[shard].append(key)
    return pools


def measure_sharded(downtimes, crash_at: float = 40.0) -> list:
    rows = []
    for downtime in downtimes:
        recover_at = crash_at + downtime
        script = FaultScript()
        script.at(crash_at).crash_process(1).recover(at=recover_at)
        service = ShardedKV(
            ShardConfig(
                n_shards=3,
                n_processes=3,
                batch_max=4,
                seed=7,
                retry_timeout=25.0,
                deadline=20_000.0,
                faults=script,
            )
        )
        pools = _shard_key_pools(service)
        clients = [
            ClosedLoopClient(client_id=0, n_ops=25, keys=_PoolKeys(pools[0]),
                             think_time=8.0, pid=0),
            ClosedLoopClient(client_id=1, n_ops=25, keys=_PoolKeys(pools[2]),
                             think_time=8.0, pid=2),
            ClosedLoopClient(client_id=2, n_ops=8, keys=_PoolKeys(pools[1]),
                             think_time=5.0, pid=0),
        ]
        report = service.run_workload(clients)
        assert report.ok, f"requests lost at downtime={downtime}"
        committed = sum(stats.committed_commands for stats in report.shards.values())
        rows.append(
            {
                "leader_downtime": downtime,
                "completed_requests": report.completed_requests,
                "elapsed": report.elapsed,
                "commits_per_ktime": 1000.0 * committed / report.elapsed,
                "settle_latency": max(0.0, service.kernel.now - recover_at),
            }
        )
    return rows


# ----------------------------------------------------------------------
# report assembly
# ----------------------------------------------------------------------
def measure(smoke: bool = False) -> dict:
    durations = [10.0, 30.0] if smoke else [10.0, 30.0, 60.0, 120.0]
    downtimes = [60.0, 210.0] if smoke else [60.0, 120.0, 210.0, 420.0]
    return {
        "schema": SCHEMA,
        "consensus": measure_consensus(durations),
        "sharded": measure_sharded(downtimes),
    }


def check_shapes(report: dict) -> None:
    consensus = report["consensus"]
    # rejoin latency is duration-independent: the takeover read costs the
    # same whether the partition lasted 10 units or 120
    for name in _PROTOCOLS:
        latencies = [
            row["rejoin_latency"]
            for row in consensus
            if row["protocol"] == name
        ]
        assert max(latencies) - min(latencies) <= 2.0, (name, latencies)
        assert max(latencies) < 60.0, (name, latencies)
    sharded = report["sharded"]
    # longer downtime -> lower whole-run throughput, nothing lost
    rates = [row["commits_per_ktime"] for row in sharded]
    assert rates == sorted(rates, reverse=True), rates
    # settle latency is bounded by the retry interval + catch-up tail (plus
    # any healthy-shard traffic still draining), never by the downtime
    for row in sharded:
        assert row["settle_latency"] < 200.0, row


def render(report: dict) -> str:
    from repro.metrics.reporting import format_table as table

    lines = [
        table(
            ["protocol", "partition", "rejoin latency", "msgs lost"],
            [
                [
                    row["protocol"],
                    f"{row['partition_duration']:g}",
                    f"{row['rejoin_latency']:g}",
                    row["messages_lost"],
                ]
                for row in report["consensus"]
            ],
        ),
        "",
        table(
            ["leader downtime", "completed", "elapsed", "commits/ktime", "settle latency"],
            [
                [
                    f"{row['leader_downtime']:g}",
                    row["completed_requests"],
                    f"{row['elapsed']:g}",
                    f"{row['commits_per_ktime']:.1f}",
                    f"{row['settle_latency']:g}",
                ]
                for row in report["sharded"]
            ],
        ),
    ]
    return "\n".join(lines)


def test_partition_failover(benchmark):
    from benchmarks._common import emit, once

    report = once(benchmark, measure)
    check_shapes(report)
    emit(
        "E16",
        "Partition failover: recovery latency and throughput under churn",
        render(report),
        notes="Rejoin latency is heal-relative and duration-independent: the "
        "minority recovers through the memories (permission-takeover read), "
        "so the churn's history does not matter once it ends.",
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small CI grid")
    parser.add_argument("--json", type=pathlib.Path, default=None,
                        help="write the machine-readable report here")
    args = parser.parse_args()
    report = measure(smoke=args.smoke)
    check_shapes(report)
    print(render(report))
    if args.json is not None:
        args.json.write_text(json.dumps(report, indent=2) + "\n")
        print(f"\nwrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
