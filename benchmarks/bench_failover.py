"""E9 — failover latency: the cost of leaving the fast path.

Measures how long recovery takes when the common case breaks:

* Protected Memory Paxos — leader crashes; the successor grabs permissions
  (Theorem D.4's takeover) and decides;
* Fast & Robust — the Cheap Quorum leader crashes or turns Byzantine; the
  followers panic, revoke, and finish in Preferential Paxos.

The absolute numbers depend on the (tunable) timeout constants; the shape
that must hold is recovery-time ~ detection-timeout + a bounded protocol
tail, and an intact 2-delay fast path for the scenarios with no faults.
"""

import pytest

from repro import (
    CheapQuorumEquivocatorLeader,
    FastRobust,
    FastRobustConfig,
    FaultPlan,
    ProtectedMemoryPaxos,
    run_consensus,
)
from repro.consensus.cheap_quorum import CheapQuorumConfig

from benchmarks._common import emit, once, table

_FR_CONFIG = FastRobustConfig(
    cheap_quorum=CheapQuorumConfig(leader_timeout=15.0, unanimity_timeout=25.0)
)


def _decision_span(result):
    times = [r.decided_at for r in result.metrics.decisions.values()]
    return min(times), max(times)


def _measure():
    rows = []

    baseline = run_consensus(ProtectedMemoryPaxos(), 3, 3, deadline=10_000)
    first, last = _decision_span(baseline)
    rows.append(["PMP, no faults", f"{first:g}", f"{last:g}"])

    crash = run_consensus(
        ProtectedMemoryPaxos(), 3, 3,
        faults=FaultPlan().crash_process(0, at=1.0),
        omega="crash-aware", deadline=10_000,
    )
    assert crash.all_decided and crash.agreed
    first, last = _decision_span(crash)
    rows.append(["PMP, leader crash @t=1", f"{first:g}", f"{last:g}"])

    fr = run_consensus(FastRobust(_FR_CONFIG), 3, 3, deadline=30_000)
    first, last = _decision_span(fr)
    rows.append(["Fast & Robust, no faults", f"{first:g}", f"{last:g}"])

    fr_crash = run_consensus(
        FastRobust(_FR_CONFIG), 3, 3,
        faults=FaultPlan().crash_process(0, at=0.0),
        omega="crash-aware", deadline=30_000,
    )
    assert fr_crash.all_decided and fr_crash.agreed
    first, last = _decision_span(fr_crash)
    rows.append(["Fast & Robust, leader crash @t=0", f"{first:g}", f"{last:g}"])

    fr_byz = run_consensus(
        FastRobust(_FR_CONFIG), 3, 3,
        faults=FaultPlan().make_byzantine(0, CheapQuorumEquivocatorLeader()),
        omega=lambda now: 1, deadline=30_000,
    )
    assert fr_byz.all_decided and fr_byz.agreed
    first, last = _decision_span(fr_byz)
    rows.append(["Fast & Robust, Byzantine leader", f"{first:g}", f"{last:g}"])

    return rows


def test_failover_latency(benchmark):
    rows = once(benchmark, _measure)
    emit(
        "E9",
        "Failover: first/last correct decision times (virtual delays)",
        table(["scenario", "first decision", "last decision"], rows),
        notes=(
            "Shape: fault-free runs decide at t=2; failover costs the\n"
            "detection timeout plus a bounded recovery tail, and always\n"
            "terminates with agreement."
        ),
    )
    by_label = {r[0]: (float(r[1]), float(r[2])) for r in rows}
    assert by_label["PMP, no faults"][0] == 2.0
    assert by_label["Fast & Robust, no faults"][0] == 2.0
    assert by_label["PMP, leader crash @t=1"][1] > 2.0
    assert by_label["Fast & Robust, Byzantine leader"][1] > 2.0
