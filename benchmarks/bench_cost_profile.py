"""E14 (extension) — the message/memory trade: operation bills per decision.

The M&M model lets algorithms pay in two currencies: messages and memory
operations.  This bench counts both for each algorithm until all correct
processes decide (common case, n=3): the memory-heavy algorithms send few
or no messages, the message-passing baselines touch no memory, and the
hybrids sit in between — a quantitative x-ray of the paper's Figure 1
topology.
"""

import pytest

from repro import (
    AlignedPaxos,
    DiskPaxos,
    DiskPaxosConfig,
    FastPaxos,
    FastRobust,
    MessagePaxos,
    ProtectedMemoryPaxos,
    run_consensus,
)

from benchmarks._common import emit, once, table


def _measure():
    cases = [
        ("Message Paxos", MessagePaxos(), 0),
        ("Fast Paxos", FastPaxos(), 0),
        ("Disk Paxos", DiskPaxos(), 3),
        ("Disk Paxos (link-free)", DiskPaxos(DiskPaxosConfig(link_free=True)), 3),
        ("Protected Memory Paxos", ProtectedMemoryPaxos(), 3),
        ("Aligned Paxos", AlignedPaxos(), 3),
        ("Fast & Robust", FastRobust(), 3),
    ]
    rows = []
    for name, protocol, memories in cases:
        result = run_consensus(protocol, 3, memories, deadline=30_000)
        assert result.all_decided and result.agreed, name
        rows.append(
            [
                name,
                f"{result.earliest_decision_delay:g}",
                result.metrics.total_messages(),
                result.metrics.total_mem_ops(),
                result.metrics.total_signatures(),
            ]
        )
    return rows


def test_cost_profile(benchmark):
    rows = once(benchmark, _measure)
    emit(
        "E14",
        "Cost profile until all correct processes decide (n=3, common case)",
        table(
            ["algorithm", "delays", "messages", "memory ops", "signatures"],
            rows,
        ),
        notes=(
            "Shape: the message-passing baselines use zero memory ops; the\n"
            "link-free disk model uses zero messages; the M&M algorithms\n"
            "blend both — and only the Byzantine stack pays for signatures."
        ),
    )
    by_name = {r[0]: r for r in rows}
    assert by_name["Message Paxos"][3] == 0  # no memory ops
    assert by_name["Fast Paxos"][3] == 0
    assert by_name["Disk Paxos (link-free)"][2] == 0  # no messages
    assert by_name["Protected Memory Paxos"][4] == 0  # no signatures
    assert by_name["Fast & Robust"][4] > 0
