"""E12 (extension) — decision-delay distributions under network jitter.

The paper's delay counts hold on the nominal schedule; real deployments
jitter.  This bench sweeps 30 seeds of 30%-jittered synchrony and reports
the decision-delay distribution per algorithm: the *ordering* of the
nominal table (PMP = Fast&Robust fast path < Disk Paxos = Message Paxos)
must survive jitter, with the fast-path algorithms staying strictly below
the confirming-read algorithms at every percentile.
"""

import pytest

from repro import (
    DiskPaxos,
    FastPaxos,
    FastRobust,
    MessagePaxos,
    ProtectedMemoryPaxos,
)
from repro.metrics.analysis import sweep_decision_delays
from repro.sim.latency import JitteredSynchrony

from benchmarks._common import emit, once, table

SEEDS = range(30)
JITTER = 0.3


def _measure():
    cases = [
        ("Protected Memory Paxos", ProtectedMemoryPaxos, 3),
        ("Fast & Robust", FastRobust, 3),
        ("Fast Paxos", FastPaxos, 0),
        ("Disk Paxos", DiskPaxos, 3),
        ("Message Paxos", MessagePaxos, 0),
    ]
    stats = {}
    for name, factory, memories in cases:
        stats[name] = sweep_decision_delays(
            factory,
            seeds=SEEDS,
            latency_factory=lambda: JitteredSynchrony(JITTER),
            n_memories=memories,
        )
    return stats


def test_latency_distributions(benchmark):
    stats = once(benchmark, _measure)
    rows = [[name] + s.row() for name, s in stats.items()]
    emit(
        "E12",
        f"Decision-delay distributions, {len(list(SEEDS))} seeds, "
        f"{int(JITTER * 100)}% jitter",
        table(
            ["algorithm", "runs", "mean", "p50", "p90", "p99", "min", "max"],
            rows,
        ),
        notes=(
            "Shape: the fast-path algorithms' p99 stays below the\n"
            "confirming-read algorithms' p50 — the two-delay structure is a\n"
            "property of the protocol, not of lucky timing.  Note Fast\n"
            "Paxos: jitter lets concurrent proposers collide, its unanimous\n"
            "fast quorum misses, and recovery dominates — the permission\n"
            "write (PMP/F&R) keeps its fast path because contention is\n"
            "resolved at the memory, not by luck of arrival order."
        ),
    )
    fast = max(stats["Protected Memory Paxos"].p99, stats["Fast & Robust"].p99)
    slow = min(stats["Disk Paxos"].p50, stats["Message Paxos"].p50)
    assert fast < slow
    assert stats["Protected Memory Paxos"].undecided == 0
    assert stats["Fast & Robust"].undecided == 0
