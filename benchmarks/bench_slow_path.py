"""E8 — Theorem 4.4: the Robust Backup slow path under attack.

The slow path's job is not speed but survival: it must terminate with
agreement when the fast path cannot, under Byzantine interference and at
every legal cluster size.  We measure its decision latency (in delays) and
message/memory-operation bill for each adversary.
"""

import pytest

from repro import (
    EquivocatingBroadcaster,
    FaultPlan,
    PaxosValueLiar,
    RobustBackup,
    SilentByzantine,
    run_consensus,
)

from benchmarks._common import emit, once, table


def _measure():
    cases = [
        ("no failures, n=3", 3, None),
        ("no failures, n=5", 5, None),
        ("silent byzantine", 3, FaultPlan().make_byzantine(2, SilentByzantine())),
        (
            "equivocating broadcaster",
            3,
            FaultPlan().make_byzantine(1, EquivocatingBroadcaster()),
        ),
        ("paxos liar", 3, FaultPlan().make_byzantine(1, PaxosValueLiar("EVIL"))),
    ]
    rows = []
    for label, n, faults in cases:
        result = run_consensus(
            RobustBackup(), n, 3, faults=faults, deadline=30_000
        )
        assert result.all_decided and result.agreed and result.valid, label
        assert "EVIL" not in result.decided_values
        rows.append(
            [
                label,
                n,
                f"{result.earliest_decision_delay:g}",
                result.metrics.total_messages(),
                result.metrics.total_mem_ops(),
            ]
        )
    return rows


def test_slow_path_under_attack(benchmark):
    rows = once(benchmark, _measure)
    emit(
        "E8",
        "Robust Backup: latency and cost under Byzantine interference",
        table(
            ["scenario", "n", "delays", "messages", "memory ops"],
            rows,
        ),
        notes=(
            "Shape: every adversary is reduced to a crash — agreement and\n"
            "termination hold at n = 2f+1; the cost is the non-equivocating\n"
            "broadcast polling (memory ops dominate)."
        ),
    )
    assert all(float(r[2]) > 2.0 for r in rows)  # genuinely the slow path
