"""E4 — memory-crash tolerance: m >= 2 f_M + 1.

Sweeps crashed-memory counts at several array sizes for both the crash
fast path (PMP) and the Byzantine fast path (Fast & Robust): any minority
of memory crashes leaves the two-delay decision intact; one past the
minority blocks (safely).
"""

import pytest

from repro import FastRobust, FaultPlan, ProtectedMemoryPaxos, run_consensus

from benchmarks._common import emit, once, table


def _run(protocol_factory, m, crashed, deadline):
    faults = FaultPlan()
    for mid in range(crashed):
        faults.crash_memory(mid, at=0.0)
    return run_consensus(
        protocol_factory(), 3, m, faults=faults, deadline=deadline
    )


def _measure():
    rows = []
    for label, factory in [
        ("PMP", ProtectedMemoryPaxos),
        ("Fast & Robust", FastRobust),
    ]:
        for m in (3, 5, 7):
            tolerance = (m - 1) // 2
            for crashed in range(0, tolerance + 2):
                within = crashed <= tolerance
                result = _run(
                    factory, m, crashed, deadline=10_000 if within else 600
                )
                delays = result.earliest_decision_delay
                rows.append(
                    [
                        label,
                        m,
                        crashed,
                        "yes" if within else "no",
                        "-" if delays is None else f"{delays:g}",
                        "decided" if result.all_decided else "blocked",
                    ]
                )
                if within:
                    assert result.all_decided and result.agreed, (label, m, crashed)
                    assert delays == 2.0
                else:
                    assert not result.all_decided
                    assert not result.metrics.violations
    return rows


def test_memory_crash_tolerance(benchmark):
    rows = once(benchmark, _measure)
    emit(
        "E4",
        "Memory-crash sweep: fast path intact up to f_M = (m-1)/2",
        table(
            ["algorithm", "m", "memories crashed", "within bound", "delays",
             "outcome"],
            rows,
        ),
        notes=(
            "Shape: every within-bound cell decides in exactly 2 delays;\n"
            "every beyond-bound cell blocks without a safety violation."
        ),
    )
