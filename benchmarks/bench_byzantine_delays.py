"""E2 — Theorem 4.9 / Lemma B.6: 2-deciding weak Byzantine agreement.

Regenerates the paper's headline Byzantine claim: in common-case executions
Fast & Robust decides in two delays across cluster sizes, while the always-
safe slow path alone (Robust Backup) is an order of magnitude slower — the
composition is what buys the fast path without giving up resilience.
"""

import pytest

from repro import FastRobust, RobustBackup, run_consensus

from benchmarks._common import emit, once, table


def _measure():
    rows = []
    for n in (3, 5, 7):
        fast = run_consensus(FastRobust(), n, 3, deadline=30_000)
        assert fast.agreed and fast.valid
        rows.append(
            ["Fast & Robust", n, f"{fast.earliest_decision_delay:g}",
             "yes" if fast.all_decided else "no"]
        )
    for n in (3, 5):
        slow = run_consensus(RobustBackup(), n, 3, deadline=30_000)
        assert slow.agreed and slow.valid
        rows.append(
            ["Robust Backup alone", n, f"{slow.earliest_decision_delay:g}",
             "yes" if slow.all_decided else "no"]
        )
    return rows


def test_byzantine_common_case_delays(benchmark):
    rows = once(benchmark, _measure)
    emit(
        "E2",
        "2-deciding weak Byzantine agreement (common case, n = 2f+1)",
        table(["algorithm", "n", "delays to first decision", "all decided"], rows),
        notes=(
            "Paper: Fast & Robust decides in 2 delays (Theorem 4.9); the\n"
            "non-equivocating-broadcast slow path works at every size but\n"
            "pays polling round trips."
        ),
    )
    fast_rows = [r for r in rows if r[0] == "Fast & Robust"]
    slow_rows = [r for r in rows if r[0] != "Fast & Robust"]
    assert all(float(r[2]) == 2.0 for r in fast_rows)
    assert all(float(r[2]) > 2.0 for r in slow_rows)
