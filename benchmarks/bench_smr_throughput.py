"""E10 — systems framing: replicated-log throughput per delay budget.

The intro's motivation is replication systems (DARE, APUS).  This bench
drives the SMR layer over Protected Memory Paxos and compares committed
commands per unit of virtual time against a Disk-Paxos-per-slot strawman:
the two-delay fast path doubles steady-state throughput, exactly the
write-vs-write+read ratio of the two protocols.
"""

import pytest

from repro import DiskPaxos, run_consensus
from repro.consensus.base import ConsensusProtocol
from repro.core.cluster import Cluster, ClusterConfig
from repro.smr.kv import KVCommand, KVStateMachine
from repro.smr.log import ReplicatedLog, smr_regions

from benchmarks._common import emit, once, table

N_COMMANDS = 20


class _PmpLogHarness(ConsensusProtocol):
    name = "pmp-log"

    def __init__(self, n_commands):
        self.n_commands = n_commands
        self.leader_done_at = None

    def regions(self, n, m):
        return smr_regions(n)

    def tasks(self, env, value):
        machine = KVStateMachine()
        log = ReplicatedLog(env, machine.apply)

        def driver():
            if env.leader() == env.pid:
                for slot in range(self.n_commands):
                    yield from log.propose(slot, KVCommand("put", f"k{slot}", slot))
                self.leader_done_at = env.now
            while log.applied_upto < self.n_commands - 1:
                yield env.gate_wait(log.commit_gate, timeout=5.0)
            env.decide(machine.applied_count)

        return [("listener", log.listener()), ("driver", driver())]


def _pmp_log_throughput():
    harness = _PmpLogHarness(N_COMMANDS)
    cluster = Cluster(harness, ClusterConfig(3, 3, deadline=10_000))
    result = cluster.run([None] * 3)
    assert result.all_decided and result.agreed
    return harness.leader_done_at / N_COMMANDS


def _disk_paxos_per_slot_latency():
    # One fresh Disk Paxos instance per command, sequentially: the per-slot
    # commit latency of a disk-backed log without permissions.
    result = run_consensus(DiskPaxos(), 3, 3, deadline=10_000)
    assert result.agreed
    return result.earliest_decision_delay


def _measure():
    pmp_per_commit = _pmp_log_throughput()
    disk_per_commit = _disk_paxos_per_slot_latency()
    return pmp_per_commit, disk_per_commit


def test_smr_throughput(benchmark):
    pmp, disk = once(benchmark, _measure)
    rows = [
        [
            "PMP replicated log",
            f"{pmp:.2f}",
            f"{100 / pmp:.0f}",
            "write only (permissions certify)",
        ],
        [
            "Disk-Paxos-backed log",
            f"{disk:.2f}",
            f"{100 / disk:.0f}",
            "write + confirming read",
        ],
    ]
    emit(
        "E10",
        f"SMR throughput: {N_COMMANDS}-command workload, 3 replicas, 3 memories",
        table(
            ["backend", "delays per commit", "commits per 100 delays",
             "critical path"],
            rows,
        ),
        notes=(
            "Shape: the dynamic-permission fast path commits at 2 delays per\n"
            "slot in steady state — twice the throughput of the Disk Paxos\n"
            "read-back loop, matching the paper's delay arithmetic."
        ),
    )
    assert pmp == pytest.approx(2.0, abs=0.01)
    assert disk >= 4.0
    assert disk / pmp >= 2.0
