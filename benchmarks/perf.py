"""Machine-readable kernel performance runner.

Measures the simulator's hot-path throughput on five workloads and emits
``BENCH_kernel.json`` — the perf trajectory every PR answers to:

* ``message_storm``   — pure kernel messaging: 4 processes ping-ponging
  20k messages (send → deliver → resume, no memory ops);
* ``mem_op_storm``    — pure kernel memory path: 10k sequential register
  writes (invoke → arrive → apply → resolve → resume);
* ``mem_op_batch_storm`` — the doorbell-batched A/B: the same 10k writes
  posted as 8-WR fused chains (one queue entry, one completion per
  chain); each run times the unbatched variant back-to-back (interleaved
  A/B) and the report carries both rates plus the speedup;
* ``e11_sharded_kv``  — the E11 sharded-KV service workload (4 shards,
  batch 8, Zipfian closed-loop YCSB-A clients, 3 replicas, 3 memories):
  the full stack the kernel exists to carry;
* ``e18_read_paths``  — the E18 read-plane workload: 95%-read Zipfian
  served by one-sided quorum reads (2 shards), tracking the whole read
  plane from watermark publication to floor-filtered snapshots;
* ``e19_parallel_scaleout`` — the partitioned multi-core matrix: 8
  gateway-fronted service cells x 4 shards (32 consensus-backed shards)
  plus 10k single-shot remote clients in 4 client cells, run under the
  conservative-barrier :class:`~repro.sim.parallel.ParallelKernel` at
  W in {1, 2, 4, 8}; asserts the cross-worker determinism contract
  (per-cell trace hashes and final KV digests identical for every W)
  and records the critical-path projected speedup per worker count.
  Informational (``"gated": false``): the projection is not a
  wall-clock noise floor, so the regression gate skips it.

Two throughput figures are reported per workload:

* ``events_per_sec``      — scheduler entries processed per wall second
  (``queue.popped``).  Engine-relative: an engine that schedules fewer
  entries for the same simulated work shows fewer events.
* ``sim_events_per_sec``  — *schedule-invariant* simulated events per wall
  second: messages delivered + memory-operation legs (2 per op).  This is
  the paper-meaningful unit (each costs one virtual delay) and is the
  figure to compare across engine versions — it cannot be gamed by
  scheduling the same work with fewer queue entries.

Wall times are min-over-``--runs`` (noise floor); p50/p99 across runs are
recorded so regressions in variance are visible too.

Usage::

    python benchmarks/perf.py                      # measure, write BENCH_kernel.json
    python benchmarks/perf.py --check              # measure, compare vs committed
                                                   # baseline, exit 1 on >25% regression
    python benchmarks/perf.py --check --tolerance 0.4
    python benchmarks/perf.py --obs-overhead            # zero-cost-observability
                                                        # gate: strict 2% tolerance
    python benchmarks/perf.py --whatif-overhead         # informational: what-if
                                                        # replay tax vs fast path
    python benchmarks/perf.py --out /tmp/now.json --baseline BENCH_kernel.json
    python benchmarks/perf.py --only e19 --smoke    # CI parallel smoke: shrunken
                                                    # scale-out matrix only

The committed baseline is machine-relative: refresh it (re-run without
``--check`` and commit the JSON) when the reference hardware changes.
``--check`` compares the baseline's recorded ``platform``/``python``
against the current host first; on a mismatch, regressions are reported
as warnings rather than failures — a borrowed laptop should never flag
the kernel.  Current-run reports land under ``benchmarks/out/`` (never
committed), so the committed baseline cannot be clobbered by a check.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import statistics
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

DEFAULT_BASELINE = REPO_ROOT / "BENCH_kernel.json"
SCHEMA = "repro-bench-kernel/1"


# ----------------------------------------------------------------------
# workloads — each returns (wall_seconds, stats_dict) for ONE fresh run
# ----------------------------------------------------------------------
def _run_message_storm(n_messages: int = 20_000):
    from repro.mem.layout import MemoryLayout
    from repro.sim.environment import ProcessEnv
    from repro.sim.kernel import Kernel, SimConfig
    from repro.types import ProcessId

    n_procs = 4
    kernel = Kernel(SimConfig(n_processes=n_procs, n_memories=0), MemoryLayout([]))
    envs = [ProcessEnv(kernel, ProcessId(p)) for p in range(n_procs)]
    per_task = n_messages // n_procs

    def pinger(p):
        env = envs[p]
        for i in range(per_task):
            yield env.send((p + 1) % n_procs, i, topic="t")
            yield from env.recv(topic="t")

    for p in range(n_procs):
        kernel.spawn(p, f"p{p+1}", pinger(p))
    start = time.perf_counter()
    kernel.run(until=10.0**9)
    wall = time.perf_counter() - start
    messages = kernel.metrics.total_messages()
    assert messages == n_messages, messages
    return wall, {
        "events": kernel.queue.popped,
        "sim_events": messages,  # no memory ops in this storm
        "commits": 0,
    }


def _run_mem_op_storm(n_ops: int = 10_000):
    from repro.mem.layout import MemoryLayout
    from repro.mem.permissions import Permission
    from repro.mem.regions import RegionSpec
    from repro.sim.environment import ProcessEnv
    from repro.sim.kernel import Kernel, SimConfig
    from repro.types import ProcessId

    kernel = Kernel(
        SimConfig(n_processes=3, n_memories=3),
        MemoryLayout([RegionSpec("r", ("x",), Permission.open(range(3)))]),
    )
    env = ProcessEnv(kernel, ProcessId(0))

    def writer():
        for i in range(n_ops):
            yield from env.write(0, "r", ("x", "k"), i)

    kernel.spawn(0, "writer", writer())
    start = time.perf_counter()
    kernel.run(until=10.0**9)
    wall = time.perf_counter() - start
    ops = kernel.metrics.total_mem_ops()
    assert ops == n_ops, ops
    return wall, {
        "events": kernel.queue.popped,
        "sim_events": 2 * ops,  # request + response leg per op
        "commits": 0,
    }


def _run_mem_op_batch_storm(n_ops: int = 10_000, chain: int = 8):
    """Doorbell-batched A/B: the mem_op_storm writes posted as fused
    ``chain``-WR chains versus one-at-a-time, timed back-to-back in the
    same call so both variants see the same machine noise.  The primary
    wall (and sim_events_per_sec) is the *batched* variant; the unbatched
    control rides along in ``stats["ab"]`` and surfaces in the report as
    ``ops_per_sec_unbatched`` / ``batch_speedup``."""
    from repro.mem.layout import MemoryLayout
    from repro.mem.permissions import Permission
    from repro.mem.regions import RegionSpec
    from repro.sim.environment import ProcessEnv
    from repro.sim.kernel import Kernel, SimConfig
    from repro.types import ProcessId

    def fresh():
        kernel = Kernel(
            SimConfig(n_processes=3, n_memories=3),
            MemoryLayout([RegionSpec("r", ("x",), Permission.open(range(3)))]),
        )
        return kernel, ProcessEnv(kernel, ProcessId(0))

    kernel, env = fresh()

    def batched_writer():
        for start in range(0, n_ops, chain):
            yield from env.write_batch(
                0, [("r", ("x", "k"), i) for i in range(start, start + chain)]
            )

    kernel.spawn(0, "writer", batched_writer())
    start = time.perf_counter()
    kernel.run(until=10.0**9)
    wall = time.perf_counter() - start
    ops = kernel.metrics.total_mem_ops()  # the ledger counts sub-ops
    assert ops == n_ops, ops

    kernel_b, env_b = fresh()

    def unbatched_writer():
        for i in range(n_ops):
            yield from env_b.write(0, "r", ("x", "k"), i)

    kernel_b.spawn(0, "writer", unbatched_writer())
    start = time.perf_counter()
    kernel_b.run(until=10.0**9)
    unbatched_wall = time.perf_counter() - start
    assert kernel_b.metrics.total_mem_ops() == n_ops

    return wall, {
        "events": kernel.queue.popped,
        "sim_events": 2 * ops,  # same simulated work as the control
        "commits": 0,
        "ab": {"ops": n_ops, "chain": chain, "unbatched_wall_s": unbatched_wall},
    }


def _service_stats(service, report) -> dict:
    """Uniform service-workload stats, derived from the ledger and the
    workload report rather than per-experiment ad-hoc fields: ``commits``
    is the consensus-committed command count (``shard_commits``, whatever
    mix of client writes, consensus-routed reads, and migration puts the
    workload committed) and ``reads`` is every completed client read,
    whichever path (consensus, lease-local, quorum) served it."""
    kernel = service.kernel
    return {
        "events": kernel.queue.popped,
        "sim_events": kernel.metrics.total_messages()
        + 2 * kernel.metrics.total_mem_ops(),
        "commits": sum(kernel.metrics.shard_commits.values()),
        "reads": report.completed_reads,
    }


def _run_e11_sharded(n_clients: int = 96, ops_per_client: int = 50, seed: int = 7):
    from repro.shard import ClosedLoopClient, ShardConfig, ShardedKV, YCSB_A, ZipfianKeys

    service = ShardedKV(
        ShardConfig(n_shards=4, batch_max=8, seed=seed, deadline=10.0**7)
    )
    clients = [
        ClosedLoopClient(
            client_id=i, n_ops=ops_per_client, keys=ZipfianKeys(256), mix=YCSB_A
        )
        for i in range(n_clients)
    ]
    start = time.perf_counter()
    report = service.run_workload(clients)
    wall = time.perf_counter() - start
    expected = n_clients * ops_per_client
    assert report.completed_requests == expected, report.completed_requests
    return wall, _service_stats(service, report)


def _run_e18_read_paths(n_clients: int = 96, ops_per_client: int = 25, seed: int = 17):
    """The read-path service workload: 95%-read Zipfian over one-sided
    quorum reads — the reads/sec figure tracks the whole read plane
    (watermark publication, floor-filtered quorum snapshots, write-backs)."""
    from repro.shard import (
        ClosedLoopClient,
        OperationMix,
        ShardConfig,
        ShardedKV,
        ZipfianKeys,
    )

    service = ShardedKV(
        ShardConfig(
            n_shards=2, batch_max=4, seed=seed, read_mode="quorum",
            deadline=10.0**7,
        )
    )
    clients = [
        ClosedLoopClient(
            client_id=i, n_ops=ops_per_client, keys=ZipfianKeys(256),
            mix=OperationMix(read_fraction=0.95),
        )
        for i in range(n_clients)
    ]
    start = time.perf_counter()
    report = service.run_workload(clients)
    wall = time.perf_counter() - start
    expected = n_clients * ops_per_client
    assert report.completed_requests == expected, report.completed_requests
    assert service.kernel.metrics.staleness_violations == 0
    return wall, _service_stats(service, report)


def _run_e19_parallel_scaleout(smoke: bool = False):
    """E19: the partitioned multi-core scale-out matrix.

    Builds the full cell layout once per worker count W — gateway-fronted
    :class:`ShardedKV` service cells plus bare client cells routed by a
    consistent ring over cell ids — and runs it to completion under the
    conservative-barrier coordinator.  Hard-asserts the determinism
    contract at every W (identical per-cell trace hashes via the combined
    hash, identical final KV digests, every client completed), then
    reports the critical-path projected speedup per W.  The returned wall
    is the W=1 run: the sequential-equivalent figure, comparable across
    engine versions like every other workload's.
    """
    from repro.shard import OperationMix, ShardConfig, ShardedKV, UniformKeys
    from repro.shard.gateway import (
        CellRouter,
        RemoteClient,
        client_cell_factory,
        service_cell_factory,
    )
    from repro.sim.parallel import ParallelKernel

    from repro.shard.partitioner import WorkerAssignment

    if smoke:
        n_service_cells, shards_per_cell = 4, 2
        n_client_cells, n_clients = 2, 400
        worker_counts = (1, 4)
    else:
        n_service_cells, shards_per_cell = 8, 4
        n_client_cells, n_clients = 8, 10_000
        worker_counts = (1, 2, 4, 8)
    seed = 23
    # client-side cost of a request (send, park, resume) relative to the
    # service-side cost (gateway, consensus, apply): measured ~1:3 on the
    # reference host; only the ratio's rough magnitude matters to packing
    client_cost_ratio = 0.35
    service_cells = list(range(n_service_cells))
    router = CellRouter(service_cells)
    mix = OperationMix(read_fraction=0.5)
    keys = UniformKeys(4096)
    per_cell = n_clients // n_client_cells

    def make_service(cell):
        return lambda: ShardedKV(
            ShardConfig(
                n_shards=shards_per_cell, batch_max=8, seed=seed + cell,
                deadline=10.0**7,
            )
        )

    def make_clients(base):
        def build():
            # one op per client: 10k concurrent single-shot requests is
            # the fan-in shape that stresses the fabric merge, and the
            # huge retry timeout keeps the closed loop resend-free even
            # when every request lands in the same barrier round
            return [
                RemoteClient(
                    client_id=base + i, n_ops=1, keys=keys, mix=mix,
                    route=router.cell_for, pid=i % 16,
                    retry_timeout=50_000.0,
                )
                for i in range(per_cell)
            ]

        return build

    factories = [
        service_cell_factory(cell, make_service(cell)) for cell in service_cells
    ]
    for index in range(n_client_cells):
        cell_id = n_service_cells + index
        factories.append(
            client_cell_factory(
                cell_id, make_clients(index * per_cell),
                n_processes=16, seed=1000 + cell_id,
            )
        )

    # ring-aware packing: a service cell's weight is its arc share of the
    # cell ring (= its expected request volume), client cells carry their
    # client count scaled by the measured per-request cost ratio
    n_cells = n_service_cells + n_client_cells
    arcs = router.weights()
    cell_weights = {cell: arcs[cell] * n_service_cells for cell in service_cells}
    for index in range(n_client_cells):
        cell_weights[n_service_cells + index] = (
            client_cost_ratio * n_service_cells / n_client_cells
        )

    scaleout = {}
    reference = None
    reference_digests = None
    w1 = None
    for w in worker_counts:
        assignment = WorkerAssignment(range(n_cells), w)
        assignment.set_weights(cell_weights)
        engine = ParallelKernel(
            factories, workers=w, mode="inline", assignment=assignment
        )
        # collector pauses land inside whichever worker slice is running
        # and skew the per-round max; park the GC for the measured span
        import gc

        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            result = engine.run()
            wall = time.perf_counter() - start
        finally:
            gc.enable()
        assert result.goal_met, f"W={w}: cells did not reach their goals"
        report = engine.run_report()
        digests = {
            cell: summary["summary"]["kv_digest"]
            for cell, summary in report["cells"].items()
            if summary["summary"] and "kv_digest" in summary["summary"]
        }
        if reference is None:
            reference, reference_digests = report, digests
            completed = sum(
                s["summary"]["completed"]
                for s in report["cells"].values()
                if s["summary"] and "completed" in s["summary"]
            )
            assert completed == n_clients, completed
            w1 = wall
        else:
            assert report["combined_hash"] == reference["combined_hash"], (
                f"W={w}: trace hashes diverged from W={worker_counts[0]}"
            )
            assert digests == reference_digests, (
                f"W={w}: final KV state diverged from W={worker_counts[0]}"
            )
        scaleout[str(w)] = {
            "wall_s": round(wall, 6),
            "rounds": result.rounds,
            "projected_speedup": round(result.projected_speedup, 3),
            "total_busy_s": round(result.total_busy, 6),
            "critical_path_s": round(result.critical_path, 6),
            "coordinator_s": round(result.coordinator_wall, 6),
        }
        print(
            f"    W={w}: {wall:.3f}s wall, {result.rounds} rounds, "
            f"projected {result.projected_speedup:.2f}x "
            f"(critical {result.critical_path:.3f}s of "
            f"{result.total_busy:.3f}s busy)"
        )

    totals = reference["totals"]
    commits = sum(
        sum(s["summary"]["commits"].values())
        for s in reference["cells"].values()
        if s["summary"] and "commits" in s["summary"]
    )
    out_dir = REPO_ROOT / "benchmarks" / "out"
    out_dir.mkdir(parents=True, exist_ok=True)
    artifact = {
        "schema": "repro-parallel-report/1",
        "smoke": smoke,
        "workload": {
            "service_cells": n_service_cells,
            "shards_per_cell": shards_per_cell,
            "client_cells": n_client_cells,
            "clients": n_clients,
            "worker_counts": list(worker_counts),
        },
        "combined_hash": reference["combined_hash"],
        "kv_digests": reference_digests,
        "totals": totals,
        "projection": "critical-path",
        "scaleout": scaleout,
    }
    (out_dir / "parallel_report.json").write_text(
        json.dumps(artifact, indent=2) + "\n"
    )
    return w1, {
        "events": totals["events"],
        "sim_events": totals["sim_events"],
        "commits": commits,
        "extra": {
            "gated": False,
            "projection": "critical-path",
            "cells": n_service_cells + n_client_cells,
            "shards": n_service_cells * shards_per_cell,
            "clients": n_clients,
            "crossed": totals["crossed"],
            "combined_hash": reference["combined_hash"][:16],
            "scaleout": scaleout,
            "speedup_w4": scaleout.get("4", {}).get("projected_speedup"),
        },
    }


WORKLOADS = {
    "message_storm": _run_message_storm,
    "mem_op_storm": _run_mem_op_storm,
    "mem_op_batch_storm": _run_mem_op_batch_storm,
    "e11_sharded_kv": _run_e11_sharded,
    "e18_read_paths": _run_e18_read_paths,
    "e19_parallel_scaleout": _run_e19_parallel_scaleout,
}

#: per-workload run-count overrides: the scale-out matrix runs four whole
#: worker-count configurations per invocation and its headline figure is
#: a projection rather than a noise-floor wall, so one run is the budget
RUNS_OVERRIDE = {"e19_parallel_scaleout": 1}

#: workloads that take a ``smoke=`` kwarg (CI-sized configurations)
SMOKE_AWARE = {"e19_parallel_scaleout"}


def whatif_overhead(runs: int = 3, n_ops: int = 10_000) -> float:
    """Informational: the replay cost of the what-if override seam.

    A bare ``LatencyOverride`` prices every leg through the wrapped
    model's constants but, being dynamic, forfeits the kernel's cached
    fast path — this is the per-replay tax every counterfactual
    experiment pays.  Returns the slowdown ratio (override wall /
    constant wall) over the ``mem_op_storm`` workload; not gated, the
    zero-cost contract only covers the *detached* configuration.
    """
    from repro.mem.layout import MemoryLayout
    from repro.mem.permissions import Permission
    from repro.mem.regions import RegionSpec
    from repro.obs.whatif import LatencyOverride
    from repro.sim.environment import ProcessEnv
    from repro.sim.kernel import Kernel, SimConfig
    from repro.types import ProcessId

    def run_once(latency) -> float:
        config = SimConfig(n_processes=3, n_memories=3)
        if latency is not None:
            config.latency = latency
        kernel = Kernel(
            config,
            MemoryLayout([RegionSpec("r", ("x",), Permission.open(range(3)))]),
        )
        env = ProcessEnv(kernel, ProcessId(0))

        def writer():
            for i in range(n_ops):
                yield from env.write(0, "r", ("x", "k"), i)

        kernel.spawn(0, "writer", writer())
        start = time.perf_counter()
        kernel.run(until=10.0**9)
        return time.perf_counter() - start

    constant = min(run_once(None) for _ in range(runs))
    override = min(run_once(LatencyOverride()) for _ in range(runs))
    return override / constant


# ----------------------------------------------------------------------
# measurement
# ----------------------------------------------------------------------
def measure(runs: int = 5, only: str = None, smoke: bool = False) -> dict:
    """Run every workload ``runs`` times; return the experiments dict.

    *only* filters workloads by substring match on their name; *smoke*
    switches smoke-aware workloads to their CI-sized configuration.
    Workloads in :data:`RUNS_OVERRIDE` ignore *runs*.
    """
    experiments = {}
    for name, fn in WORKLOADS.items():
        if only and only not in name:
            continue
        n_runs = RUNS_OVERRIDE.get(name, runs)
        kwargs = {"smoke": True} if smoke and name in SMOKE_AWARE else {}
        walls = []
        ab_walls = []
        stats = None
        for _ in range(n_runs):
            wall, stats = fn(**kwargs)
            walls.append(wall)
            if "ab" in stats:
                ab_walls.append(stats["ab"]["unbatched_wall_s"])
        walls.sort()
        best = walls[0]
        p50 = statistics.median(walls)
        p99 = walls[min(len(walls) - 1, int(len(walls) * 0.99))]
        experiments[name] = {
            "runs": n_runs,
            "wall_best_s": round(best, 6),
            "wall_p50_s": round(p50, 6),
            "wall_p99_s": round(p99, 6),
            "events": stats["events"],
            "sim_events": stats["sim_events"],
            "events_per_sec": round(stats["events"] / best, 1),
            "sim_events_per_sec": round(stats["sim_events"] / best, 1),
            "commits_per_sec": round(stats["commits"] / best, 1)
            if stats["commits"]
            else None,
            "reads_per_sec": round(stats["reads"] / best, 1)
            if stats.get("reads")
            else None,
        }
        if "extra" in stats:
            experiments[name].update(stats["extra"])
        if ab_walls:
            # the A/B control: best-of walls for both variants, so the
            # speedup compares noise floors rather than single samples
            ab = stats["ab"]
            ab_best = min(ab_walls)
            experiments[name].update(
                {
                    "chain": ab["chain"],
                    "ops_per_sec": round(ab["ops"] / best, 1),
                    "ops_per_sec_unbatched": round(ab["ops"] / ab_best, 1),
                    "batch_speedup": round(ab_best / best, 2),
                }
            )
        print(
            f"  {name:<18} best={best:.4f}s p50={p50:.4f}s "
            f"sim-ev/s={experiments[name]['sim_events_per_sec']:>12,.0f} "
            f"ev/s={experiments[name]['events_per_sec']:>12,.0f}"
        )
        if ab_walls:
            entry = experiments[name]
            print(
                f"  {'':<18} batched {entry['ops_per_sec']:,.0f} ops/s vs "
                f"unbatched {entry['ops_per_sec_unbatched']:,.0f} ops/s "
                f"({entry['batch_speedup']:.2f}x, chain={entry['chain']})"
            )
    return experiments


def check(current: dict, baseline: dict, tolerance: float, only: str = None):
    """Regressions: experiments whose sim_events_per_sec dropped more than
    *tolerance* versus the baseline.  Returns ``(failures, warnings)``.

    Schema-tolerant by design: a baseline from before an experiment (or a
    field) existed *warns* instead of KeyError-ing, so adding a workload
    never forces a same-commit baseline refresh — only a dropped or slowed
    experiment fails the check.  Experiments the baseline marks
    ``"gated": false`` (scaling projections, not noise-floor walls) are
    skipped; under ``--only``, baseline experiments outside the filter
    are skipped too rather than reported missing.  (Cross-host
    comparisons are the caller's concern: see :func:`host_mismatch`.)"""
    failures = []
    warnings = []
    base_experiments = baseline.get("experiments", {})
    for name in current:
        if name not in base_experiments:
            warnings.append(
                f"{name}: not in baseline (new experiment?) — not checked; "
                f"refresh the baseline to start gating it"
            )
    for name, base in base_experiments.items():
        if only and only not in name:
            continue
        if base.get("gated") is False:
            continue  # informational experiment: projections, not walls
        now = current.get(name)
        if now is None:
            failures.append(f"{name}: missing from current measurement")
            continue
        base_rate = base.get("sim_events_per_sec")
        if base_rate is None:
            warnings.append(
                f"{name}: baseline lacks sim_events_per_sec — not checked"
            )
            continue
        floor = base_rate * (1.0 - tolerance)
        if now["sim_events_per_sec"] < floor:
            failures.append(
                f"{name}: sim_events_per_sec {now['sim_events_per_sec']:,.0f} "
                f"< floor {floor:,.0f} "
                f"(baseline {base_rate:,.0f}, "
                f"tolerance {tolerance:.0%})"
            )
    return failures, warnings


def host_mismatch(current_report: dict, baseline: dict):
    """The baseline fields that identify its host, where they differ from
    the current report's — non-empty means rate comparisons are
    cross-machine and should warn, not gate."""
    mismatches = []
    for field in ("platform", "python"):
        base_value = baseline.get(field)
        now_value = current_report.get(field)
        if base_value is not None and base_value != now_value:
            mismatches.append(f"{field}: baseline {base_value!r} != {now_value!r}")
    return mismatches


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=pathlib.Path, default=None,
                        help="where to write the JSON report (default: repo-root "
                             "BENCH_kernel.json; benchmarks/out/BENCH_kernel.current.json "
                             "under --check so the baseline is never clobbered and the "
                             "working tree stays clean)")
    parser.add_argument("--baseline", type=pathlib.Path, default=DEFAULT_BASELINE,
                        help="baseline JSON for --check (default: committed BENCH_kernel.json)")
    parser.add_argument("--check", action="store_true",
                        help="compare against the baseline and exit 1 on regression")
    parser.add_argument("--obs-overhead", action="store_true",
                        help="gate the zero-cost observability contract: the default "
                             "measurement (kernel.obs detached) must sit within a "
                             "strict 2%% of the baseline — implies --check")
    parser.add_argument("--tolerance", type=float, default=None,
                        help="allowed fractional drop vs baseline "
                             "(default 0.25; 0.02 under --obs-overhead)")
    parser.add_argument("--runs", type=int, default=5,
                        help="runs per workload; best-of is reported (default 5)")
    parser.add_argument("--only", type=str, default=None, metavar="SUBSTR",
                        help="run only workloads whose name contains SUBSTR "
                             "(e.g. 'e19'); --check skips unmatched baseline "
                             "entries instead of reporting them missing")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized configurations for smoke-aware workloads "
                             "(e19: 4 service cells x 2 shards, 400 clients, "
                             "W in {1, 4})")
    parser.add_argument("--whatif-overhead", action="store_true",
                        help="also report the (informational, ungated) slowdown of "
                             "replaying the memory-op storm through an identity "
                             "what-if LatencyOverride vs the constant fast path")
    args = parser.parse_args(argv)
    if args.obs_overhead:
        args.check = True
    if args.tolerance is None:
        args.tolerance = 0.02 if args.obs_overhead else 0.25
    if args.out is None:
        args.out = (
            REPO_ROOT / "benchmarks" / "out" / "BENCH_kernel.current.json"
            if args.check
            else DEFAULT_BASELINE
        )

    # Load the baseline before any writing so --check can never compare a
    # freshly written report against itself.
    baseline = None
    if args.check and args.baseline.exists():
        baseline = json.loads(args.baseline.read_text())

    print(f"measuring kernel hot-path throughput ({args.runs} runs per workload)...")
    experiments = measure(runs=args.runs, only=args.only, smoke=args.smoke)
    if not experiments:
        print(f"no workload matches --only {args.only!r}")
        return 2
    report = {
        "schema": SCHEMA,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "experiments": experiments,
    }
    if args.whatif_overhead:
        ratio = whatif_overhead(runs=args.runs)
        report["whatif_overhead"] = ratio
        print(f"  what-if replay overhead (identity override vs constant "
              f"fast path): {ratio:.2f}x")
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")

    if args.check:
        if baseline is None:
            print(f"no baseline at {args.baseline}; nothing to check against")
            return 0
        failures, warnings = check(
            experiments, baseline, args.tolerance, only=args.only
        )
        mismatches = host_mismatch(report, baseline)
        if mismatches and failures:
            # wall-clock rates do not transfer across hosts: report, don't gate
            warnings.append(
                "baseline was measured on a different host — downgrading "
                "rate regressions to warnings (" + "; ".join(mismatches) + ")"
            )
            warnings.extend(failures)
            failures = []
        for warning in warnings:
            print(f"  warning: {warning}")
        if failures:
            print("PERF REGRESSION:")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        print(f"perf check ok (within {args.tolerance:.0%} of baseline)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
