"""Machine-readable kernel performance runner.

Measures the simulator's hot-path throughput on three workloads and emits
``BENCH_kernel.json`` — the perf trajectory every PR answers to:

* ``message_storm``   — pure kernel messaging: 4 processes ping-ponging
  20k messages (send → deliver → resume, no memory ops);
* ``mem_op_storm``    — pure kernel memory path: 10k sequential register
  writes (invoke → arrive → apply → resolve → resume);
* ``e11_sharded_kv``  — the E11 sharded-KV service workload (4 shards,
  batch 8, Zipfian closed-loop YCSB-A clients, 3 replicas, 3 memories):
  the full stack the kernel exists to carry.

Two throughput figures are reported per workload:

* ``events_per_sec``      — scheduler entries processed per wall second
  (``queue.popped``).  Engine-relative: an engine that schedules fewer
  entries for the same simulated work shows fewer events.
* ``sim_events_per_sec``  — *schedule-invariant* simulated events per wall
  second: messages delivered + memory-operation legs (2 per op).  This is
  the paper-meaningful unit (each costs one virtual delay) and is the
  figure to compare across engine versions — it cannot be gamed by
  scheduling the same work with fewer queue entries.

Wall times are min-over-``--runs`` (noise floor); p50/p99 across runs are
recorded so regressions in variance are visible too.

Usage::

    python benchmarks/perf.py                      # measure, write BENCH_kernel.json
    python benchmarks/perf.py --check              # measure, compare vs committed
                                                   # baseline, exit 1 on >25% regression
    python benchmarks/perf.py --check --tolerance 0.4
    python benchmarks/perf.py --obs-overhead            # zero-cost-observability
                                                        # gate: strict 2% tolerance
    python benchmarks/perf.py --out /tmp/now.json --baseline BENCH_kernel.json

The committed baseline is machine-relative: refresh it (re-run without
``--check`` and commit the JSON) when the reference hardware changes.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import statistics
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

DEFAULT_BASELINE = REPO_ROOT / "BENCH_kernel.json"
SCHEMA = "repro-bench-kernel/1"


# ----------------------------------------------------------------------
# workloads — each returns (wall_seconds, stats_dict) for ONE fresh run
# ----------------------------------------------------------------------
def _run_message_storm(n_messages: int = 20_000):
    from repro.mem.layout import MemoryLayout
    from repro.sim.environment import ProcessEnv
    from repro.sim.kernel import Kernel, SimConfig
    from repro.types import ProcessId

    n_procs = 4
    kernel = Kernel(SimConfig(n_processes=n_procs, n_memories=0), MemoryLayout([]))
    envs = [ProcessEnv(kernel, ProcessId(p)) for p in range(n_procs)]
    per_task = n_messages // n_procs

    def pinger(p):
        env = envs[p]
        for i in range(per_task):
            yield env.send((p + 1) % n_procs, i, topic="t")
            yield from env.recv(topic="t")

    for p in range(n_procs):
        kernel.spawn(p, f"p{p+1}", pinger(p))
    start = time.perf_counter()
    kernel.run(until=10.0**9)
    wall = time.perf_counter() - start
    messages = kernel.metrics.total_messages()
    assert messages == n_messages, messages
    return wall, {
        "events": kernel.queue.popped,
        "sim_events": messages,  # no memory ops in this storm
        "commits": 0,
    }


def _run_mem_op_storm(n_ops: int = 10_000):
    from repro.mem.layout import MemoryLayout
    from repro.mem.permissions import Permission
    from repro.mem.regions import RegionSpec
    from repro.sim.environment import ProcessEnv
    from repro.sim.kernel import Kernel, SimConfig
    from repro.types import ProcessId

    kernel = Kernel(
        SimConfig(n_processes=3, n_memories=3),
        MemoryLayout([RegionSpec("r", ("x",), Permission.open(range(3)))]),
    )
    env = ProcessEnv(kernel, ProcessId(0))

    def writer():
        for i in range(n_ops):
            yield from env.write(0, "r", ("x", "k"), i)

    kernel.spawn(0, "writer", writer())
    start = time.perf_counter()
    kernel.run(until=10.0**9)
    wall = time.perf_counter() - start
    ops = kernel.metrics.total_mem_ops()
    assert ops == n_ops, ops
    return wall, {
        "events": kernel.queue.popped,
        "sim_events": 2 * ops,  # request + response leg per op
        "commits": 0,
    }


def _run_e11_sharded(n_clients: int = 96, ops_per_client: int = 50, seed: int = 7):
    from repro.shard import ClosedLoopClient, ShardConfig, ShardedKV, YCSB_A, ZipfianKeys

    service = ShardedKV(
        ShardConfig(n_shards=4, batch_max=8, seed=seed, deadline=10.0**7)
    )
    clients = [
        ClosedLoopClient(
            client_id=i, n_ops=ops_per_client, keys=ZipfianKeys(256), mix=YCSB_A
        )
        for i in range(n_clients)
    ]
    start = time.perf_counter()
    report = service.run_workload(clients)
    wall = time.perf_counter() - start
    expected = n_clients * ops_per_client
    assert report.completed_requests == expected, report.completed_requests
    kernel = service.kernel
    return wall, {
        "events": kernel.queue.popped,
        "sim_events": kernel.metrics.total_messages()
        + 2 * kernel.metrics.total_mem_ops(),
        "commits": report.completed_requests,
    }


def _run_e18_read_paths(n_clients: int = 96, ops_per_client: int = 25, seed: int = 17):
    """The read-path service workload: 95%-read Zipfian over one-sided
    quorum reads — the reads/sec figure tracks the whole read plane
    (watermark publication, floor-filtered quorum snapshots, write-backs)."""
    from repro.shard import (
        ClosedLoopClient,
        OperationMix,
        ShardConfig,
        ShardedKV,
        ZipfianKeys,
    )

    service = ShardedKV(
        ShardConfig(
            n_shards=2, batch_max=4, seed=seed, read_mode="quorum",
            deadline=10.0**7,
        )
    )
    clients = [
        ClosedLoopClient(
            client_id=i, n_ops=ops_per_client, keys=ZipfianKeys(256),
            mix=OperationMix(read_fraction=0.95),
        )
        for i in range(n_clients)
    ]
    start = time.perf_counter()
    report = service.run_workload(clients)
    wall = time.perf_counter() - start
    expected = n_clients * ops_per_client
    assert report.completed_requests == expected, report.completed_requests
    kernel = service.kernel
    assert kernel.metrics.staleness_violations == 0
    return wall, {
        "events": kernel.queue.popped,
        "sim_events": kernel.metrics.total_messages()
        + 2 * kernel.metrics.total_mem_ops(),
        # only the writes commit through consensus here; the reads bypass
        # it by design and are reported separately as reads_per_sec
        "commits": report.completed_writes,
        "reads": report.completed_reads,
    }


WORKLOADS = {
    "message_storm": _run_message_storm,
    "mem_op_storm": _run_mem_op_storm,
    "e11_sharded_kv": _run_e11_sharded,
    "e18_read_paths": _run_e18_read_paths,
}


# ----------------------------------------------------------------------
# measurement
# ----------------------------------------------------------------------
def measure(runs: int = 5) -> dict:
    """Run every workload ``runs`` times; return the experiments dict."""
    experiments = {}
    for name, fn in WORKLOADS.items():
        walls = []
        stats = None
        for _ in range(runs):
            wall, stats = fn()
            walls.append(wall)
        walls.sort()
        best = walls[0]
        p50 = statistics.median(walls)
        p99 = walls[min(len(walls) - 1, int(len(walls) * 0.99))]
        experiments[name] = {
            "runs": runs,
            "wall_best_s": round(best, 6),
            "wall_p50_s": round(p50, 6),
            "wall_p99_s": round(p99, 6),
            "events": stats["events"],
            "sim_events": stats["sim_events"],
            "events_per_sec": round(stats["events"] / best, 1),
            "sim_events_per_sec": round(stats["sim_events"] / best, 1),
            "commits_per_sec": round(stats["commits"] / best, 1)
            if stats["commits"]
            else None,
            "reads_per_sec": round(stats["reads"] / best, 1)
            if stats.get("reads")
            else None,
        }
        print(
            f"  {name:<16} best={best:.4f}s p50={p50:.4f}s "
            f"sim-ev/s={experiments[name]['sim_events_per_sec']:>12,.0f} "
            f"ev/s={experiments[name]['events_per_sec']:>12,.0f}"
        )
    return experiments


def check(current: dict, baseline: dict, tolerance: float) -> list:
    """Regressions: experiments whose sim_events_per_sec dropped more than
    *tolerance* versus the baseline.  Returns failure strings."""
    failures = []
    for name, base in baseline.get("experiments", {}).items():
        now = current.get(name)
        if now is None:
            failures.append(f"{name}: missing from current measurement")
            continue
        floor = base["sim_events_per_sec"] * (1.0 - tolerance)
        if now["sim_events_per_sec"] < floor:
            failures.append(
                f"{name}: sim_events_per_sec {now['sim_events_per_sec']:,.0f} "
                f"< floor {floor:,.0f} "
                f"(baseline {base['sim_events_per_sec']:,.0f}, "
                f"tolerance {tolerance:.0%})"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=pathlib.Path, default=None,
                        help="where to write the JSON report (default: repo-root "
                             "BENCH_kernel.json; BENCH_kernel.current.json under --check "
                             "so the baseline is never clobbered)")
    parser.add_argument("--baseline", type=pathlib.Path, default=DEFAULT_BASELINE,
                        help="baseline JSON for --check (default: committed BENCH_kernel.json)")
    parser.add_argument("--check", action="store_true",
                        help="compare against the baseline and exit 1 on regression")
    parser.add_argument("--obs-overhead", action="store_true",
                        help="gate the zero-cost observability contract: the default "
                             "measurement (kernel.obs detached) must sit within a "
                             "strict 2%% of the baseline — implies --check")
    parser.add_argument("--tolerance", type=float, default=None,
                        help="allowed fractional drop vs baseline "
                             "(default 0.25; 0.02 under --obs-overhead)")
    parser.add_argument("--runs", type=int, default=5,
                        help="runs per workload; best-of is reported (default 5)")
    args = parser.parse_args(argv)
    if args.obs_overhead:
        args.check = True
    if args.tolerance is None:
        args.tolerance = 0.02 if args.obs_overhead else 0.25
    if args.out is None:
        args.out = (
            args.baseline.with_suffix(".current.json") if args.check else DEFAULT_BASELINE
        )

    # Load the baseline before any writing so --check can never compare a
    # freshly written report against itself.
    baseline = None
    if args.check and args.baseline.exists():
        baseline = json.loads(args.baseline.read_text())

    print(f"measuring kernel hot-path throughput ({args.runs} runs per workload)...")
    experiments = measure(runs=args.runs)
    report = {
        "schema": SCHEMA,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "experiments": experiments,
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")

    if args.check:
        if baseline is None:
            print(f"no baseline at {args.baseline}; nothing to check against")
            return 0
        failures = check(experiments, baseline, args.tolerance)
        if failures:
            print("PERF REGRESSION:")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        print(f"perf check ok (within {args.tolerance:.0%} of baseline)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
