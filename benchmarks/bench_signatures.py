"""E7 — Section 4.2: one signature on the fast path.

The paper: "Cheap Quorum decides in two delays using one signature in
common executions, whereas the best prior algorithm requires 6 f_P + 2
signatures".  We measure signatures consumed *up to the first decision* on
the fast path, and contrast with the signature bill of the slow path
(Robust Backup signs every broadcast unit).
"""

import pytest

from repro import FastRobust, RobustBackup
from repro.core.cluster import Cluster, ClusterConfig

from benchmarks._common import emit, once, table


def _sigs_until_first_decision(protocol, n=3, m=3, deadline=30_000):
    cluster = Cluster(protocol, ClusterConfig(n, m, deadline=deadline))
    cluster.start([f"v{p}" for p in range(n)])
    kernel = cluster.kernel
    kernel.run(until=deadline, stop_when=lambda: bool(kernel.metrics.decisions))
    assert kernel.metrics.decisions, f"{protocol.name} never decided"
    decider = next(iter(kernel.metrics.decisions))
    record = kernel.metrics.decisions[decider]
    return (
        record.signatures_at_decision,
        kernel.metrics.total_signatures(),
        record.delays,
    )


def _measure():
    fast = _sigs_until_first_decision(FastRobust())
    slow = _sigs_until_first_decision(RobustBackup())
    prior = 6 * 1 + 2  # the paper's 6f+2 comparison point at f=1
    return fast, slow, prior


def test_signature_economy(benchmark):
    fast, slow, prior = once(benchmark, _measure)
    rows = [
        ["Fast & Robust fast path (measured)", f"{fast[2]:g}", fast[0], fast[1]],
        ["Robust Backup slow path (measured)", f"{slow[2]:g}", slow[0], slow[1]],
        ["Best prior 2-delay BFT [7] (paper)", "2", prior, "-"],
    ]
    emit(
        "E7",
        "Signatures spent until the first decision (f = 1)",
        table(
            ["path", "delays", "decider signatures", "system signatures"],
            rows,
        ),
        notes=(
            "Shape: the fast path decides after exactly ONE signature by the\n"
            "decider (the leader signs its value, writes, decides); the\n"
            "slow path and prior fast BFT protocols sign per message."
        ),
    )
    assert fast[0] == 1
    assert fast[2] == 2.0
    assert slow[1] > fast[0]
