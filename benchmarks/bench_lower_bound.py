"""E6 — Theorem 6.1: static-permission shared memory cannot 2-decide.

Runs the proof's construction as code: the strawman 2-deciding algorithm is
driven into an agreement violation by delaying its writes past a second
proposer's solo run; the same adversary cannot break Disk Paxos (which pays
the confirming read, hence >= 4 delays) nor Protected Memory Paxos (whose
dynamic permissions turn the delayed write into a nak).
"""

import pytest

from repro.lowerbound import (
    attack_disk_paxos,
    attack_naive_fast,
    attack_protected_memory_paxos,
    solo_fast_delay,
)

from benchmarks._common import emit, once, table


def _measure():
    solo = solo_fast_delay()
    naive = attack_naive_fast()
    pmp = attack_protected_memory_paxos()
    disk = attack_disk_paxos()
    return solo, naive, pmp, disk


def test_lower_bound_construction(benchmark):
    solo, naive, pmp, disk = once(benchmark, _measure)
    rows = [
        [
            "strawman (2-deciding, static perms)",
            f"{solo:g}",
            "VIOLATED" if naive.agreement_violated else "held",
            str(naive.decisions),
        ],
        [
            "Disk Paxos (static perms, 4 delays)",
            "4",
            "VIOLATED" if disk.agreement_violated else "held",
            str(disk.decisions),
        ],
        [
            "Protected Memory Paxos (dynamic perms)",
            "2",
            "VIOLATED" if pmp.agreement_violated else "held",
            str(pmp.decisions),
        ],
    ]
    emit(
        "E6",
        "Theorem 6.1 adversary: delay the fast decider's writes",
        table(["algorithm", "solo delays", "agreement", "decisions"], rows),
        notes=(
            "Shape: 2 delays + static permissions is impossible — the\n"
            "strawman splits; Disk Paxos survives by paying 2 extra delays;\n"
            f"PMP survives at 2 delays because the delayed write naks\n"
            f"(observed: {pmp.fast_path_write_naked})."
        ),
    )
    assert solo == 2.0
    assert naive.agreement_violated
    assert not pmp.agreement_violated and pmp.fast_path_write_naked
    assert not disk.agreement_violated
