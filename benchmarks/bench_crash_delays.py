"""E3 — Theorem 5.1: crash consensus, two delays at n >= f+1.

The crash-failure comparison the paper draws in the introduction:

* Disk Paxos: best resilience (n >= f+1) but >= 4 delays;
* Fast Paxos: 2 delays but n >= 2f+1;
* Protected Memory Paxos: both — 2 delays at n = f+1 (even n = 2),
  which no message-passing protocol can reach.
"""

import pytest

from repro import (
    DiskPaxos,
    FastPaxos,
    MessagePaxos,
    ProtectedMemoryPaxos,
    run_consensus,
)

from benchmarks._common import emit, once, table


def _measure():
    rows = []
    cases = [
        ("Message Paxos", MessagePaxos(), 3, 0, "n >= 2f+1"),
        ("Fast Paxos", FastPaxos(), 3, 0, "n >= 2f+1"),
        ("Disk Paxos", DiskPaxos(), 3, 3, "n >= f+1"),
        ("Protected Memory Paxos", ProtectedMemoryPaxos(), 3, 3, "n >= f+1"),
        ("Protected Memory Paxos", ProtectedMemoryPaxos(), 2, 3, "n >= f+1"),
        ("Protected Memory Paxos", ProtectedMemoryPaxos(), 1, 3, "n >= f+1"),
    ]
    for name, protocol, n, m, bound in cases:
        result = run_consensus(protocol, n, m, deadline=10_000)
        assert result.agreed and result.valid
        rows.append(
            [name, n, m, bound, f"{result.earliest_decision_delay:g}"]
        )
    return rows


def test_crash_consensus_delays(benchmark):
    rows = once(benchmark, _measure)
    emit(
        "E3",
        "Crash consensus: delays vs resilience (common case)",
        table(["algorithm", "n", "m", "resilience", "delays"], rows),
        notes=(
            "Shape: Disk Paxos and Message Paxos pay 4 delays; Fast Paxos\n"
            "reaches 2 only with n >= 2f+1; PMP reaches 2 all the way down\n"
            "to a single live process (Theorem 5.1)."
        ),
    )
    by_name = {}
    for name, n, m, _bound, delays in rows:
        by_name.setdefault(name, []).append(float(delays))
    assert all(d == 2.0 for d in by_name["Protected Memory Paxos"])
    assert all(d == 2.0 for d in by_name["Fast Paxos"])
    assert all(d >= 4.0 for d in by_name["Disk Paxos"])
    assert all(d >= 4.0 for d in by_name["Message Paxos"])
