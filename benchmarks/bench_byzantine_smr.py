"""E13 (extension) — multi-shot Byzantine replication (the Mu/uBFT shape).

The paper's algorithms are single-shot; its systems descendants order a
log.  This bench chains Fast & Robust instances into a Byzantine replicated
log at n = 2f+1 and measures (a) per-slot fast-path latency for the leader
and (b) end-to-end log agreement, common case and under a silent Byzantine
replica.
"""

import pytest

from repro import FaultPlan, SilentByzantine
from repro.core.cluster import Cluster, ClusterConfig
from repro.smr.byzantine_log import ByzantineLogConfig, ByzantineReplicatedLog

from benchmarks._common import emit, once, table

SCRIPT = {0: [("cmd", i) for i in range(3)]}


def _run(faults=None, n_slots=3, deadline=120_000):
    proto = ByzantineReplicatedLog(SCRIPT, ByzantineLogConfig(n_slots=n_slots))
    cluster = Cluster(proto, ClusterConfig(3, 3, deadline=deadline), faults)
    result = cluster.run([None] * 3)
    return proto, result


def _measure():
    rows = []

    proto, common = _run()
    assert common.all_decided and common.agreed
    leader_slot_times = [
        common.metrics.instance_decisions[slot][0].decided_at
        for slot in range(3)
    ]
    rows.append(
        [
            "common case",
            "3 slots",
            f"{leader_slot_times[0]:g}",
            "identical logs" if common.agreed else "DIVERGED",
            f"{common.final_time:g}",
        ]
    )

    faults = FaultPlan().make_byzantine(2, SilentByzantine())
    proto, byz = _run(faults=faults, n_slots=2)
    assert byz.all_decided and byz.agreed
    rows.append(
        [
            "silent Byzantine replica",
            "2 slots",
            f"{byz.metrics.instance_decisions[0][0].decided_at:g}",
            "identical logs" if byz.agreed else "DIVERGED",
            f"{byz.final_time:g}",
        ]
    )
    return rows, leader_slot_times


def test_byzantine_smr(benchmark):
    rows, leader_slot_times = once(benchmark, _measure)
    emit(
        "E13",
        "Byzantine replicated log: Fast & Robust per slot, n = 2f+1 = 3",
        table(
            ["scenario", "workload", "slot-0 leader decision", "log agreement",
             "all replicas done"],
            rows,
        ),
        notes=(
            "Shape: the leader commits slot 0 at t = 2 (the fast path is\n"
            "preserved across instances), honest replicas build identical\n"
            "logs, and one Byzantine replica of three changes nothing —\n"
            "message-passing BFT would need four replicas for this."
        ),
    )
    assert leader_slot_times[0] == 2.0
