"""Legacy setuptools shim (the environment has no `wheel` package, so the
PEP 517 editable-install path is unavailable; metadata lives in
pyproject.toml)."""

from setuptools import setup

setup()
